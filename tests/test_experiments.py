"""Integration tests: every paper figure/table runner produces the
paper's qualitative shape. Small scales keep these fast; the benches run
the same harnesses at larger scale.
"""

import pytest

from repro.analysis.experiments import (
    ABLATIONS,
    ablate_nsb_size,
    ablate_nvr_depth,
    explicit_preload_bytes,
    fig1b_sparsity_gap,
    fig5_latency_breakdown,
    fig6_accuracy_coverage,
    fig6c_data_movement,
    fig7_bandwidth_allocation,
    fig8a_layer_miss,
    fig8bc_llm_throughput,
    fig9_nsb_sensitivity,
    l2_config,
    table1_overhead,
    table2_workloads,
)
from repro.workloads import build_workload

SCALE = 0.2


class TestL2Config:
    @pytest.mark.parametrize("kib", [64, 128, 192, 256, 384, 512, 1024])
    def test_all_sweep_sizes_shapeable(self, kib):
        cfg = l2_config(kib)
        assert cfg.size_bytes == kib * 1024


class TestFig1b:
    def test_speedup_sublinear_in_sparsity(self):
        res = fig1b_sparsity_gap(ratios=(1, 4, 16), scale=SCALE)
        # Monotone speedup, but below the ideal (= ratio).
        assert res.speedups[0] == 1.0
        assert res.speedups[1] > 1.5
        assert res.speedups[2] > res.speedups[1]
        assert res.gap_at(16) >= 1.0

    def test_offchip_tracks_params_sublinearly(self):
        res = fig1b_sparsity_gap(ratios=(1, 16), scale=SCALE)
        assert res.offchip_per_step[1] < res.offchip_per_step[0]


class TestFig5:
    @pytest.fixture(scope="class")
    def fig5(self):
        return fig5_latency_breakdown(
            workloads=("ds", "mk"), panels=("fp16",), scale=SCALE
        )

    def test_bars_normalised_to_inorder(self, fig5):
        for per_mech in fig5.panels["fp16"].values():
            assert per_mech["inorder"].total == pytest.approx(1.0)

    def test_nvr_fastest(self, fig5):
        for per_mech in fig5.panels["fp16"].values():
            nvr = per_mech["nvr"].total
            for mech, cell in per_mech.items():
                if mech != "nvr":
                    assert nvr <= cell.total + 1e-9

    def test_stall_reduction_matches_headline(self, fig5):
        """Paper: NVR removes ~97-99% of cache-miss stall time."""
        assert fig5.stall_reduction("fp16", "nvr") > 0.9

    def test_stalls_dominate_inorder(self, fig5):
        for per_mech in fig5.panels["fp16"].values():
            assert per_mech["inorder"].stall > per_mech["inorder"].base


class TestFig6:
    @pytest.fixture(scope="class")
    def fig6(self):
        return fig6_accuracy_coverage(workloads=("ds", "mk", "gcn"), scale=SCALE)

    def test_nvr_coverage_highest(self, fig6):
        for per_mech in fig6.data.values():
            nvr_cov = per_mech["nvr"][1]
            for mech, (_, cov) in per_mech.items():
                if mech != "nvr":
                    assert nvr_cov >= cov - 1e-9

    def test_nvr_above_90_mean(self, fig6):
        assert fig6.mean_coverage("nvr") > 0.9
        assert fig6.mean_accuracy("nvr") > 0.9

    def test_hash_workload_capability_gap(self, fig6):
        """IMP/DVR collapse on MK; NVR does not (the paper's core claim)."""
        assert fig6.data["mk"]["imp"][1] < 0.2
        assert fig6.data["mk"]["dvr"][1] < 0.2
        assert fig6.data["mk"]["nvr"][1] > 0.9


class TestFig6c:
    def test_demand_offchip_collapse(self):
        res = fig6c_data_movement(scale=SCALE)
        # Paper: ~30x fewer off-chip accesses during actual loads.
        assert res.reduction("nvr") > 10
        assert res.reduction("nvr+nsb") >= res.reduction("nvr") * 0.9


class TestFig7:
    def test_preload_model_overfetches(self):
        prog = build_workload("ds", scale=SCALE)
        gathered = sum(len(t.indices) * t.gathers[0].seg_bytes for t in prog.tiles)
        assert explicit_preload_bytes(prog) > gathered

    def test_offchip_reduction_headline(self):
        """Paper: ~75% off-chip bandwidth reduction vs the baseline."""
        res = fig7_bandwidth_allocation(scale=SCALE)
        assert res.offchip_reduction(False) > 0.6
        assert res.offchip_reduction(True) > 0.6


class TestFig8:
    def test_fig8a_gap(self):
        rates = fig8a_layer_miss(scale=SCALE)
        assert rates["qkt"]["inorder"][0] > 5 * rates["qkt"]["nvr"][0]

    def test_fig8bc_decode_gain(self):
        res = fig8bc_llm_throughput(calib_scale=SCALE)
        assert res.decode_gain(2048) > 0.3
        assert res.decode_gain(2048) > res.decode_gain(512)

    def test_fig8bc_monotone_bandwidth(self):
        res = fig8bc_llm_throughput(calib_scale=SCALE)
        for series in res.decode["nvr"].values():
            assert series == sorted(series)


class TestFig9:
    @pytest.fixture(scope="class")
    def fig9(self):
        return fig9_nsb_sensitivity(
            nsb_sizes=(4, 16), l2_sizes=(64, 256, 1024), scale=SCALE
        )

    def test_grid_shape(self, fig9):
        assert len(fig9.perf) == 2
        assert len(fig9.perf[0]) == 3

    def test_nsb_beats_equal_area_l2(self, fig9):
        """Paper headline: growing the NSB outperforms equal-area L2
        scaling by a wide margin (perf = 1/(latency x area))."""
        assert fig9.nsb_vs_l2_benefit() > 2.0

    def test_perf_decreases_with_l2_area(self, fig9):
        # Latency saturates, so area-normalised perf must fall with L2.
        for row in fig9.perf:
            assert row[0] > row[-1]


class TestAblations:
    def test_depth_sweep_improves_over_shallow(self):
        res = ablate_nvr_depth(values=(1, 8), workloads=("ds", "st"), scale=SCALE)
        assert res.values == [1, 8]
        assert set(res.cycles) == {"ds", "st"}
        # Deeper runahead hides more latency than depth 1 on these
        # gather-bound traces (the paper's depth sensitivity).
        assert res.geomean_speedups()[1] > 1.0
        assert res.best_value() == 8
        assert res.speedups("ds")[0] == 1.0

    def test_nsb_size_sweep_runs_cached(self, tmp_path):
        from repro.runner import ResultCache, SweepRunner

        cold = SweepRunner(cache=ResultCache(tmp_path))
        res = ablate_nsb_size(
            values=(4, 16), workloads=("st",), scale=SCALE, runner=cold
        )
        assert cold.submitted == 2
        warm = SweepRunner(cache=ResultCache(tmp_path))
        rerun = ablate_nsb_size(
            values=(4, 16), workloads=("st",), scale=SCALE, runner=warm
        )
        assert warm.submitted == 0
        assert rerun == res

    def test_every_registered_ablation_runs(self):
        # One tiny point each: the study menu stays wired end to end.
        for name, study in ABLATIONS.items():
            res = study(values=(2,), workloads=("st",), scale=0.05)
            assert res.name == name
            assert res.cycles["st"][0] > 0


class TestTables:
    def test_table1(self):
        report = table1_overhead()
        assert len(report.structures) == 5
        assert report.total_kib < 2.0

    def test_table2(self):
        rows = table2_workloads(scale=SCALE)
        assert len(rows) == 8
        shorts = [r.short for r in rows]
        assert shorts == ["DS", "GAT", "GCN", "GSABT", "H2O", "MK", "SCN", "ST"]
        for row in rows:
            assert row.gather_elements > 0
            assert row.footprint_kib > 256
