"""Fleet herding: drivers, restart policy, autoscaling, cache sync.

The acceptance properties of the fleet layer:

* drivers are registry entries speaking one ``submit/poll/stop``
  protocol, reconstructible from their persisted state-file config;
* the herder replaces dead workers — behind an exponential backoff and
  a max-restart cap, so a worker that dies on arrival cannot spin — and
  the autoscaler moves the fleet between its bounds with queue depth;
* ``Session.fleet`` sweeps are byte-identical to the local backend
  (the ``fleet-smoke`` CI job pins the CLI flavour, chaos kill
  included);
* cache push/pull shares warmth across filesystems without ever
  merging a salt-mismatched, misaddressed or corrupt entry.
"""

import json
import sys
import time

import pytest

from repro.__main__ import main as cli_main
from repro.errors import ConfigError
from repro.runner import (
    FLEET_DRIVERS,
    AutoscalerPolicy,
    Fleet,
    LocalDriver,
    Plan,
    ResultCache,
    RunSpec,
    SlurmDriver,
    SSHDriver,
    WorkerHandle,
    WorkQueue,
    expand,
    make_driver,
    parse_hosts_file,
    pull_cache,
    push_cache,
    result_to_payload,
)
from repro.runner.fleet import EXITED, RUNNING, UNKNOWN
from repro.runner.pool import execute_spec
from repro.runner.queue import QueueStatus
from repro.runner.sync import is_rsync_remote
from repro.session import Session

SCALE = 0.05

#: A worker stand-in that stays alive until stopped — herder tests care
#: about process lifecycle, not simulation.
SLEEPER = [sys.executable, "-c", "import time; time.sleep(60)"]


def small_specs() -> list[RunSpec]:
    return expand("st", ["inorder", "nvr"], scales=SCALE)


def wait_for(predicate, timeout: float = 10.0, interval: float = 0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError("condition not reached within timeout")


class FakeDriver:
    """A registry-shaped driver that records calls and kills on command."""

    name = "fake"

    def __init__(self):
        self._seq = 0
        self.alive: dict[str, bool] = {}
        self.submitted = 0
        self.stopped: list[str] = []

    def config(self) -> dict:
        return {}

    def submit(self, count):
        handles = []
        for _ in range(count):
            self._seq += 1
            wid = f"fake-{self._seq}"
            self.alive[wid] = True
            handles.append(WorkerHandle(wid, {}))
        self.submitted += count
        return handles

    def poll(self, handles):
        return {
            h.id: RUNNING if self.alive.get(h.id) else EXITED for h in handles
        }

    def stop(self, handles):
        for h in handles:
            self.alive[h.id] = False
            self.stopped.append(h.id)

    def die(self, wid: str) -> None:
        self.alive[wid] = False


class TestDriverRegistry:
    def test_builtin_drivers_are_registered(self):
        assert set(FLEET_DRIVERS.names()) >= {"local", "ssh", "slurm"}

    def test_unknown_driver_lists_known_names(self, tmp_path):
        with pytest.raises(ConfigError, match="local.*ssh.*slurm"):
            make_driver("pbs", tmp_path)

    def test_make_driver_round_trips_config(self, tmp_path):
        driver = make_driver("local", tmp_path, worker_args=["--poll", "0.1"])
        assert isinstance(driver, LocalDriver)
        rebuilt = make_driver("local", tmp_path, **driver.config())
        assert rebuilt.worker_args == ["--poll", "0.1"]

    def test_handle_round_trips_json(self):
        handle = WorkerHandle("h1", {"pid": 42, "log": "x.log"})
        assert WorkerHandle.from_dict(handle.to_dict()) == handle
        with pytest.raises(ConfigError):
            WorkerHandle.from_dict({"data": {}})


class TestHostsFile:
    def test_parses_slots_comments_and_blanks(self, tmp_path):
        path = tmp_path / "hosts"
        path.write_text("# fleet\nnodeA 2\n\nnodeB   # one slot\n")
        assert parse_hosts_file(path) == [("nodeA", 2), ("nodeB", 1)]

    @pytest.mark.parametrize(
        "text,match",
        [
            ("nodeA x\n", "integer"),
            ("nodeA 0\n", ">= 1"),
            ("nodeA 1 extra\n", "expected"),
            ("# nothing\n", "no hosts"),
        ],
    )
    def test_rejects_malformed_files(self, tmp_path, text, match):
        path = tmp_path / "hosts"
        path.write_text(text)
        with pytest.raises(ConfigError, match=match):
            parse_hosts_file(path)

    def test_missing_file_is_config_error(self, tmp_path):
        with pytest.raises(ConfigError, match="cannot read"):
            parse_hosts_file(tmp_path / "absent")


class TestLocalDriver:
    def test_submit_poll_stop_lifecycle(self, tmp_path):
        driver = LocalDriver(tmp_path, command=SLEEPER)
        handles = driver.submit(2)
        assert len(handles) == 2
        assert set(driver.poll(handles).values()) == {RUNNING}
        for handle in handles:
            assert (tmp_path / "fleet" / "logs" / f"{handle.id}.log").exists()
        driver.stop(handles, grace=0.2)
        assert set(driver.poll(handles).values()) == {EXITED}

    def test_kill_hook_is_observed_as_exit(self, tmp_path):
        driver = LocalDriver(tmp_path, command=SLEEPER)
        (handle,) = driver.submit(1)
        driver.kill(handle)
        wait_for(lambda: driver.poll([handle])[handle.id] == EXITED)
        driver.stop([handle], grace=0.1)

    def test_polls_restored_handles_by_pid(self, tmp_path):
        # A handle from another process's state file has no Popen; a
        # dead pid must read as exited, not crash the poll.
        driver = LocalDriver(tmp_path)
        dead = WorkerHandle("gone", {"pid": 2**22 + 12345})
        assert driver.poll([dead]) == {"gone": EXITED}

    def test_worker_argv_targets_the_queue_cli(self, tmp_path):
        driver = LocalDriver(tmp_path, worker_args=["--heartbeat", "0.5"])
        argv = driver._argv()
        assert argv[:3] == [sys.executable, "-m", "repro"]
        assert "queue" in argv and "worker" in argv
        assert argv[-2:] == ["--heartbeat", "0.5"]


class TestHerder:
    def make_fleet(self, tmp_path, **kwargs):
        kwargs.setdefault("restart_backoff", 0.0)
        return Fleet(tmp_path, LocalDriver(tmp_path, command=SLEEPER), **kwargs)

    def test_restart_on_death(self, tmp_path):
        fleet = self.make_fleet(tmp_path)
        try:
            handles = fleet.up(2)
            fleet.driver.kill(handles[0])
            wait_for(
                lambda: fleet.driver.poll([handles[0]])[handles[0].id] == EXITED
            )
            status = fleet.tick()
            assert fleet.restarts == 1
            assert status.running == 2
            assert handles[0].id not in status.workers
        finally:
            fleet.down(drain_timeout=0.1)

    def test_restarts_wait_out_the_backoff_window(self, tmp_path):
        now = [0.0]
        fleet = self.make_fleet(
            tmp_path, restart_backoff=10.0, clock=lambda: now[0]
        )
        try:
            (first,) = fleet.up(1)
            fleet.driver.kill(first)
            wait_for(lambda: fleet.driver.poll([first])[first.id] == EXITED)
            fleet.tick()  # first restart is immediate
            assert fleet.restarts == 1
            (second,) = fleet.workers
            fleet.driver.kill(second)
            wait_for(lambda: fleet.driver.poll([second])[second.id] == EXITED)
            now[0] = 5.0  # inside the 10s window: no replacement yet
            assert fleet.tick().running == 0
            assert fleet.restarts == 1
            now[0] = 11.0
            assert fleet.tick().running == 1
            assert fleet.restarts == 2
        finally:
            fleet.down(drain_timeout=0.1)

    def test_backoff_doubles_per_restart(self, tmp_path):
        now = [0.0]
        fleet = self.make_fleet(
            tmp_path, restart_backoff=1.0, clock=lambda: now[0]
        )
        try:
            fleet.up(1)
            for expected_next in (1.0, 3.0, 7.0):  # 1, +2, +4
                (worker,) = fleet.workers
                fleet.driver.kill(worker)
                wait_for(
                    lambda w=worker: fleet.driver.poll([w])[w.id] == EXITED
                )
                now[0] = fleet._next_restart_at
                fleet.tick()
                assert fleet._next_restart_at == pytest.approx(expected_next)
        finally:
            fleet.down(drain_timeout=0.1)

    def test_gives_up_at_the_restart_cap(self, tmp_path):
        fleet = self.make_fleet(tmp_path, max_restarts=1)
        try:
            fleet.up(1)
            for _ in range(2):
                (worker,) = fleet.workers
                fleet.driver.kill(worker)
                wait_for(
                    lambda w=worker: fleet.driver.poll([w])[w.id] == EXITED
                )
                fleet.tick()
            status = fleet.tick()
            assert fleet.gave_up
            assert status.running == 0
            assert fleet.restarts == 1  # capped: the second death stays dead
        finally:
            fleet.down(drain_timeout=0.1)

    def test_up_clears_a_stale_stop_sentinel(self, tmp_path):
        fleet = self.make_fleet(tmp_path)
        fleet.queue.ensure()
        fleet.queue.stop_path.touch()
        try:
            fleet.up(1)
            assert not fleet.queue.stop_requested()
        finally:
            fleet.down(drain_timeout=0.1)

    def test_down_is_terminal_and_removes_state(self, tmp_path):
        fleet = self.make_fleet(tmp_path)
        fleet.up(2)
        assert fleet.state_path.exists()
        fleet.down(drain_timeout=0.1)
        assert fleet.workers == []
        assert not fleet.state_path.exists()
        assert fleet.queue.stop_requested()

    def test_chaos_hook_requires_a_kill_capable_driver(self, tmp_path):
        fleet = Fleet(tmp_path, FakeDriver())
        with pytest.raises(ConfigError, match="kill hook"):
            fleet.arm_chaos()


class TestAutoscaler:
    def test_target_is_demand_clamped_to_bounds(self):
        policy = AutoscalerPolicy(min_workers=1, max_workers=4)
        assert policy.target(QueueStatus(), current=3) == 1
        assert policy.target(QueueStatus(queued=2, claimed=1), current=1) == 3
        assert policy.target(QueueStatus(queued=100), current=1) == 4

    def test_expired_leases_do_not_double_count(self):
        # expired is a subset of claimed, not extra demand.
        policy = AutoscalerPolicy(min_workers=0, max_workers=10)
        status = QueueStatus(queued=1, claimed=2, expired=2)
        assert policy.target(status, current=0) == 3

    @pytest.mark.parametrize("bounds", [(-1, 4), (2, 1), (0, 0)])
    def test_invalid_bounds_raise(self, bounds):
        with pytest.raises(ConfigError):
            AutoscalerPolicy(*bounds)

    def test_fleet_needs_both_bounds_or_neither(self, tmp_path):
        with pytest.raises(ConfigError, match="both"):
            Fleet(tmp_path, FakeDriver(), min_workers=1)

    def test_fleet_grows_and_shrinks_with_queue_depth(self, tmp_path):
        driver = FakeDriver()
        fleet = Fleet(tmp_path, driver, min_workers=1, max_workers=4)
        depth = [QueueStatus(queued=10)]
        fleet.queue.status = lambda lease_timeout=None, deep=False: depth[0]
        fleet.up(1)
        status = fleet.tick()
        assert fleet.size == 4
        assert status.running == 4
        assert driver.submitted == 4
        depth[0] = QueueStatus()  # drained: shrink to the floor
        status = fleet.tick()
        assert fleet.size == 1
        assert status.running == 1
        assert len(driver.stopped) == 3

    def test_autoscaler_growth_skips_the_restart_backoff(self, tmp_path):
        # Growth is immediate; only crash replacements are rate-limited.
        driver = FakeDriver()
        fleet = Fleet(
            tmp_path,
            driver,
            min_workers=1,
            max_workers=3,
            restart_backoff=1000.0,
        )
        depth = [QueueStatus(queued=5)]
        fleet.queue.status = lambda lease_timeout=None, deep=False: depth[0]
        fleet.up(1)
        assert fleet.tick().running == 3
        assert fleet.restarts == 0


class TestFleetState:
    def test_attach_rebuilds_driver_and_workers(self, tmp_path):
        fleet = Fleet(tmp_path, LocalDriver(tmp_path, command=SLEEPER))
        handles = fleet.up(2)
        try:
            attached = Fleet.attach(tmp_path)
            assert isinstance(attached.driver, LocalDriver)
            assert attached.driver._command == SLEEPER
            assert [h.id for h in attached.workers] == [h.id for h in handles]
            assert attached.status().running == 2
        finally:
            fleet.down(drain_timeout=0.1)

    def test_attach_without_state_is_config_error(self, tmp_path):
        with pytest.raises(ConfigError, match="fleet up"):
            Fleet.attach(tmp_path)

    def test_attach_rejects_corrupt_state(self, tmp_path):
        state = tmp_path / "fleet" / "state.json"
        state.parent.mkdir(parents=True)
        state.write_text("{nope")
        with pytest.raises(ConfigError, match="corrupt"):
            Fleet.attach(tmp_path)


class TestSSHDriver:
    def make_driver(self, tmp_path, run, hosts=(("nodeA", 2), ("nodeB", 1))):
        return SSHDriver(tmp_path, hosts=hosts, run=run, ssh_cmd=["ssh"])

    def test_needs_hosts(self, tmp_path):
        with pytest.raises(ConfigError, match="hosts file"):
            SSHDriver(tmp_path)

    def test_submit_launches_workers_round_robin(self, tmp_path):
        calls = []

        def run(argv):
            calls.append(argv)
            return f"{1000 + len(calls)}\n"

        driver = self.make_driver(tmp_path, run)
        handles = driver.submit(3)
        assert [h.data["host"] for h in handles] == ["nodeA", "nodeB", "nodeA"]
        assert handles[0].id == "nodeA:1001"
        remote = calls[0][-1]
        assert "nohup" in remote and "queue worker" in remote
        assert str(tmp_path) in remote and "echo $!" in remote
        assert calls[0][:2] == ["ssh", "nodeA"]

    def test_submit_beyond_capacity_is_config_error(self, tmp_path):
        driver = self.make_driver(tmp_path, lambda argv: "1\n")
        driver.submit(3)
        with pytest.raises(ConfigError, match="capacity"):
            driver.submit(1)

    def test_submit_without_pid_echo_is_config_error(self, tmp_path):
        driver = self.make_driver(tmp_path, lambda argv: "bash: no such\n")
        with pytest.raises(ConfigError, match="did not echo a pid"):
            driver.submit(1)

    def test_poll_maps_probe_output_to_states(self, tmp_path):
        def run(argv):
            if "kill -0 1 " in argv[-1]:
                return "up\n"
            if "kill -0 2 " in argv[-1]:
                return "down\n"
            raise ConfigError("unreachable host")

        driver = self.make_driver(tmp_path, run)
        handles = [
            WorkerHandle("nodeA:1", {"host": "nodeA", "pid": 1}),
            WorkerHandle("nodeA:2", {"host": "nodeA", "pid": 2}),
            WorkerHandle("nodeC:3", {"host": "nodeC", "pid": 3}),
        ]
        assert driver.poll(handles) == {
            "nodeA:1": RUNNING,
            "nodeA:2": EXITED,
            "nodeC:3": UNKNOWN,
        }

    def test_stop_interrupts_remote_pids(self, tmp_path):
        calls = []
        driver = self.make_driver(
            tmp_path, lambda argv: (calls.append(argv), "1\n")[1]
        )
        (handle,) = driver.submit(1)
        calls.clear()
        driver.stop([handle])
        assert calls == [["ssh", "nodeA", "kill -INT 1"]]


class TestSlurmDriver:
    def test_render_fills_the_builtin_template(self, tmp_path):
        driver = SlurmDriver(tmp_path, worker_args=["--poll", "0.1"])
        script = driver.render(4)
        assert "#SBATCH --array=0-3" in script
        assert "repro queue worker --work-dir" in script
        assert "--poll 0.1" in script

    def test_render_honours_a_template_file(self, tmp_path):
        template = tmp_path / "job.sh"
        template.write_text(
            "#SBATCH -p gpu\n#SBATCH --array=$array_spec\n$worker_cmd\n"
        )
        driver = SlurmDriver(tmp_path, sbatch_template=template)
        script = driver.render(2)
        assert script.startswith("#SBATCH -p gpu")
        assert "--array=0-1" in script

    def test_render_rejects_unknown_placeholders(self, tmp_path):
        template = tmp_path / "job.sh"
        template.write_text("$worker_cmd $nonsense\n")
        with pytest.raises(ConfigError, match="placeholder"):
            SlurmDriver(tmp_path, sbatch_template=template).render(1)

    def test_submit_parses_the_sbatch_job_id(self, tmp_path):
        calls = []

        def run(argv):
            calls.append(argv)
            return "991;cluster\n"

        driver = SlurmDriver(tmp_path, run=run)
        handles = driver.submit(3)
        assert [h.id for h in handles] == [
            "slurm-991_0",
            "slurm-991_1",
            "slurm-991_2",
        ]
        assert calls[0][:2] == ["sbatch", "--parsable"]
        script = tmp_path / "fleet" / "sbatch-001.sh"
        assert script.exists() and "--array=0-2" in script.read_text()

    def test_live_tasks_handles_compact_pending_arrays(self):
        out = "991_0 RUNNING\n991_[2-4%2] PENDING\n991_7 COMPLETING\n"
        assert SlurmDriver._live_tasks(out) == {0, 2, 3, 4, 7}

    def test_poll_and_stop_round_trip(self, tmp_path):
        calls = []

        def run(argv):
            calls.append(argv)
            if argv[0] == "squeue":
                return "991_0 RUNNING\n"
            return "991\n"

        driver = SlurmDriver(tmp_path, run=run)
        handles = driver.submit(2)
        states = driver.poll(handles)
        assert states == {"slurm-991_0": RUNNING, "slurm-991_1": EXITED}
        driver.stop([handles[0]])
        assert calls[-1] == ["scancel", "991_0"]

    def test_poll_reports_unknown_when_squeue_fails(self, tmp_path):
        def run(argv):
            if argv[0] == "squeue":
                raise ConfigError("squeue: command not found")
            return "991\n"

        driver = SlurmDriver(tmp_path, run=run)
        handles = driver.submit(1)
        assert driver.poll(handles) == {"slurm-991_0": UNKNOWN}


class TestCacheSync:
    def warm_cache(self, root) -> tuple[ResultCache, RunSpec, dict]:
        cache = ResultCache(root)
        spec = RunSpec("st", mechanism="inorder", scale=SCALE)
        payload = execute_spec(spec)
        cache.put(spec, payload)
        return cache, spec, payload

    def test_push_pull_round_trip(self, tmp_path):
        cache, spec, payload = self.warm_cache(tmp_path / "a")
        remote = str(tmp_path / "remote")
        report = push_cache(cache, remote)
        assert (report.copied, report.rejected) == (1, 0)
        other = ResultCache(tmp_path / "b")
        report = pull_cache(other, remote)
        assert (report.copied, report.rejected) == (1, 0)
        assert other.get(spec) == payload

    def test_push_skips_entries_already_remote(self, tmp_path):
        cache, _, _ = self.warm_cache(tmp_path / "a")
        remote = str(tmp_path / "remote")
        push_cache(cache, remote)
        report = push_cache(cache, remote)
        assert (report.copied, report.skipped) == (0, 1)

    def test_pull_rejects_salt_mismatch(self, tmp_path):
        cache, spec, _ = self.warm_cache(tmp_path / "a")
        remote = str(tmp_path / "remote")
        push_cache(cache, remote)
        stale = ResultCache(tmp_path / "b", salt="some-older-version")
        report = pull_cache(stale, remote)
        assert (report.copied, report.rejected) == (0, 1)
        assert len(stale.entries()) == 0

    def test_pull_rejects_corrupt_and_misaddressed_entries(self, tmp_path):
        cache, spec, _ = self.warm_cache(tmp_path / "a")
        remote = tmp_path / "remote"
        push_cache(cache, str(remote))
        (entry,) = list(remote.glob("??/*.json"))
        (remote / "zz").mkdir()
        (remote / "zz" / ("0" * 64 + ".json")).write_text("{trunc")
        # A valid entry renamed to the wrong content address.
        moved = remote / "ff" / ("f" * 64 + ".json")
        moved.parent.mkdir()
        moved.write_text(entry.read_text())
        other = ResultCache(tmp_path / "b")
        report = pull_cache(other, str(remote))
        assert report.copied == 1  # only the genuine entry
        assert report.rejected == 2

    def test_pull_from_missing_directory_is_config_error(self, tmp_path):
        with pytest.raises(ConfigError, match="does not exist"):
            pull_cache(ResultCache(tmp_path / "a"), str(tmp_path / "nope"))

    def test_remote_kind_classification(self):
        assert is_rsync_remote("rsync://host/module/cache")
        assert is_rsync_remote("host:/srv/cache")
        assert not is_rsync_remote("/srv/cache")
        assert not is_rsync_remote("relative/dir")
        assert not is_rsync_remote("C:/cache")  # drive letter, not a host


class TestFleetSession:
    def test_fleet_sweep_is_byte_identical_to_local(self, tmp_path):
        specs = small_specs()
        with Session.fleet(
            tmp_path / "work",
            size=1,
            lease_timeout=5,
            poll=0.02,
            timeout=120,
            cache_dir=tmp_path / "fleet-cache",
            driver_options={"worker_args": ["--poll", "0.05"]},
        ) as fleet_session:
            fleet_rs = fleet_session.sweep(list(specs))
        with Session(cache_dir=tmp_path / "local-cache") as local_session:
            local_rs = local_session.sweep(list(specs))
        fleet_bytes = json.dumps(
            [result_to_payload(r) for r in fleet_rs.results], sort_keys=True
        )
        local_bytes = json.dumps(
            [result_to_payload(r) for r in local_rs.results], sort_keys=True
        )
        assert fleet_bytes == local_bytes
        # The session teardown drained the fleet and removed its state.
        assert not (tmp_path / "work" / "fleet" / "state.json").exists()

    def test_close_is_idempotent(self, tmp_path):
        session = Session.fleet(
            tmp_path / "work",
            size=1,
            timeout=60,
            cache_dir=tmp_path / "cache",
        )
        session.close()
        session.close()


class TestFleetCLI:
    def test_up_status_down_round_trip(self, tmp_path, capsys):
        work = str(tmp_path / "work")
        assert (
            cli_main(
                [
                    "fleet",
                    "up",
                    "--work-dir",
                    work,
                    "-n",
                    "1",
                    "--worker-arg=--poll",
                    "--worker-arg=0.05",
                ]
            )
            == 0
        )
        assert "fleet up: 1 local worker(s)" in capsys.readouterr().out
        assert cli_main(["fleet", "status", "--work-dir", work]) == 0
        out = capsys.readouterr().out
        assert "driver    : local" in out
        assert "1/1 running" in out
        assert "throughput:" not in out  # nothing executed yet
        # Completions recorded by workers surface as per-worker rates.
        queue = WorkQueue(work)
        queue.record_completion("w:1", points=2)
        queue.record_completion("w:1", points=2)
        assert cli_main(["fleet", "status", "--work-dir", work]) == 0
        out = capsys.readouterr().out
        assert "throughput:" in out
        assert "w:1: 2 unit(s), 4 point(s), 0 failure(s)" in out
        assert "units/min" in out
        assert cli_main(["fleet", "down", "--work-dir", work]) == 0
        assert "drained 1 worker(s)" in capsys.readouterr().out
        assert cli_main(["fleet", "status", "--work-dir", work]) == 2

    def test_driver_flags_are_validated(self, tmp_path, capsys):
        rc = cli_main(
            [
                "fleet",
                "up",
                "--work-dir",
                str(tmp_path),
                "--driver",
                "local",
                "--hosts",
                "hosts.txt",
            ]
        )
        assert rc == 2
        assert "--hosts only applies" in capsys.readouterr().err

    def test_fleet_run_spec_matches_local_sweep(self, tmp_path, capsys):
        plan_path = tmp_path / "plan.json"
        Plan(specs=small_specs()).save(plan_path)
        fleet_json = tmp_path / "fleet.json"
        local_json = tmp_path / "local.json"
        rc = cli_main(
            [
                "fleet",
                "run",
                "-n",
                "1",
                "--work-dir",
                str(tmp_path / "work"),
                "--timeout",
                "120",
                "--cache-dir",
                str(tmp_path / "fleet-cache"),
                "--spec",
                str(plan_path),
                "--json",
                str(fleet_json),
            ]
        )
        assert rc == 0, capsys.readouterr().err
        rc = cli_main(
            [
                "sweep",
                "--spec",
                str(plan_path),
                "--cache-dir",
                str(tmp_path / "local-cache"),
                "--json",
                str(local_json),
            ]
        )
        assert rc == 0
        assert fleet_json.read_bytes() == local_json.read_bytes()
