"""The Session/Grid/ResultSet front door (PR 4).

Acceptance properties:

* ``Grid`` expands deterministically, matches the imperative ``expand``
  and the explicit shorthand-override spellings, and rejects ambiguous
  axis combinations;
* ``Session`` memoises single points and sweeps through one cache, and
  figure runners sharing a session's cache re-simulate nothing;
* ``run_workload``/``compare_mechanisms`` are true shims: identical
  signatures/returns, now warm-hitting the default session's cache;
* ``ResultSet`` selection (filter/one/pivot/speedup) and its exports
  (records/csv/markdown/json) round-trip.
"""

import csv
import io
import json

import pytest

from repro import (
    Grid,
    ResultSet,
    Session,
    compare_mechanisms,
    expand,
    run_workload,
)
from repro.core import NVRConfig
from repro.errors import ConfigError
from repro.runner import MemorySpec, Plan, RunSpec
from repro.session import (
    coerce_session,
    default_session,
    resolve_cache_dir,
    session_from_args,
    set_default_session,
)
from repro.sim.npu.executor import ExecutorConfig

SCALE = 0.05


@pytest.fixture
def scratch_session(tmp_path):
    with Session(cache_dir=tmp_path / "cache") as session:
        yield session


@pytest.fixture
def scratch_default(tmp_path):
    """Route the convenience API at a throwaway default session."""
    session = Session(cache_dir=tmp_path / "default-cache")
    previous = set_default_session(session)
    try:
        yield session
    finally:
        set_default_session(previous)
        session.close()


class TestGrid:
    def test_matches_expand(self):
        grid = Grid(
            workload=["ds", "st"],
            mechanism=["inorder", "nvr"],
            dtype="int8",
            nsb=[False, True],
            scale=[0.2, 0.4],
            seed=0,
        )
        specs = expand(
            ["ds", "st"],
            ["inorder", "nvr"],
            dtypes="int8",
            nsb=[False, True],
            scales=[0.2, 0.4],
            seeds=0,
        )
        assert [s.key() for s in grid.specs()] == [s.key() for s in specs]
        assert len(grid) == len(specs) == 16

    def test_expansion_is_deterministic(self):
        grid = lambda: Grid(  # noqa: E731
            workload=["gcn", "ds"], mechanism=["nvr", "inorder"], seed=[1, 0]
        )
        assert [s.key() for s in grid()] == [s.key() for s in grid()]

    def test_later_axes_vary_fastest(self):
        grid = Grid(workload=["ds", "st"], mechanism=["inorder", "nvr"])
        order = [(s.workload, s.mechanism) for s in grid]
        assert order == [
            ("ds", "inorder"),
            ("ds", "nvr"),
            ("st", "inorder"),
            ("st", "nvr"),
        ]

    def test_derived_axes_equal_explicit_overrides(self):
        derived = Grid(
            workload="ds",
            mechanism="nvr",
            nvr_depth=4,
            nsb_kib=8,
            l2_kib=128,
            issue_width=4,
        ).specs()
        explicit = [
            RunSpec(
                "ds",
                mechanism="nvr",
                nvr=NVRConfig(depth_tiles=4),
                memory=MemorySpec(l2_kib=128, nsb_kib=8),
                executor=ExecutorConfig(issue_width=4),
            )
        ]
        assert [s.key() for s in derived] == [s.key() for s in explicit]

    def test_workload_arg_axes(self):
        grid = Grid(workload="ds", mechanism="stream", topk_ratio=[2, 4], drift=1.0)
        specs = grid.specs()
        assert len(specs) == 2
        assert specs[0].workload_args == (("drift", 1.0), ("topk_ratio", 2))
        assert specs[1].workload_args == (("drift", 1.0), ("topk_ratio", 4))

    def test_requires_workload(self):
        with pytest.raises(ConfigError, match="workload"):
            Grid(mechanism="nvr")

    def test_rejects_override_plus_derived_axis(self):
        with pytest.raises(ConfigError, match="l2_kib"):
            Grid(workload="ds", memory=MemorySpec(l2_kib=64), l2_kib=[64, 128])
        with pytest.raises(ConfigError, match="nvr_depth"):
            Grid(workload="ds", nvr=NVRConfig(), nvr_depth=2)
        with pytest.raises(ConfigError, match="issue_width"):
            Grid(workload="ds", executor=ExecutorConfig(), issue_width=2)

    def test_rejects_empty_axis(self):
        with pytest.raises(ConfigError, match="no values"):
            Grid(workload="ds", mechanism=[])

    def test_plan_wire_round_trip(self):
        plan = Grid(workload=["st"], mechanism=["inorder", "nvr"], scale=SCALE).plan(
            note="test"
        )
        clone = Plan.from_json(plan.to_json())
        assert [s.key() for s in clone.specs] == [s.key() for s in plan.specs]
        assert clone.meta == {"source": "grid", "note": "test"}


class TestSession:
    def test_single_point_memoised(self, tmp_path):
        with Session(cache_dir=tmp_path) as session:
            first = session.run("st", mechanism="inorder", scale=SCALE)
            second = session.run("st", mechanism="inorder", scale=SCALE)
        assert session.submitted == 1
        assert session.cache_hits == 1
        assert first == second

    def test_run_accepts_spec_or_axes(self, scratch_session):
        spec = RunSpec("st", mechanism="inorder", scale=SCALE)
        by_spec = scratch_session.run(spec)
        by_axes = scratch_session.run("st", mechanism="inorder", scale=SCALE)
        assert by_spec == by_axes
        assert scratch_session.submitted == 1
        with pytest.raises(ConfigError, match="not both"):
            scratch_session.run(spec, mechanism="nvr")

    def test_point_cache_shared_with_sweeps(self, tmp_path):
        # The run_workload bugfix property at the Session level: a single
        # point warm-hits results a sweep simulated, and vice versa.
        with Session(cache_dir=tmp_path) as session:
            grid = Grid(workload="st", mechanism=["inorder", "nvr"], scale=SCALE)
            session.sweep(grid)
            assert session.submitted == 2
            session.run("st", mechanism="nvr", scale=SCALE)
            assert session.submitted == 2
            assert session.cache_hits == 1

    def test_sweep_returns_aligned_resultset(self, scratch_session):
        grid = Grid(workload="st", mechanism=["inorder", "nvr"], scale=SCALE)
        rs = scratch_session.sweep(grid)
        assert isinstance(rs, ResultSet)
        assert [s.mechanism for s in rs.specs] == ["inorder", "nvr"]
        assert rs.one(mechanism="nvr").total_cycles > 0

    def test_sessions_share_cache_across_figure_runners(self, tmp_path):
        from repro.analysis.experiments import (
            fig6c_data_movement,
            fig7_bandwidth_allocation,
        )

        with Session(cache_dir=tmp_path / "shared") as first:
            fig6c_data_movement(scale=SCALE, session=first)
            fig7_bandwidth_allocation(scale=SCALE, session=first)
            # fig7 reuses fig6c's nvr and nvr+nsb points.
            assert first.cache_hits >= 2
        with Session(cache_dir=tmp_path / "shared") as second:
            fig6c_data_movement(scale=SCALE, session=second)
            fig7_bandwidth_allocation(scale=SCALE, session=second)
            assert second.submitted == 0  # fully warm

    def test_wrapped_runner_is_not_owned(self, tmp_path):
        from repro.runner import ResultCache, SweepRunner

        runner = SweepRunner(cache=ResultCache(tmp_path))
        session = coerce_session(runner=runner)
        session.run("st", mechanism="inorder", scale=SCALE)
        assert runner.submitted == 1
        with pytest.raises(ConfigError, match="not both"):
            Session(runner=runner, jobs=4)

    def test_coerce_session_passthrough(self, scratch_session):
        assert coerce_session(scratch_session) is scratch_session
        assert coerce_session(None, scratch_session) is scratch_session
        assert coerce_session() is default_session()
        with pytest.raises(ConfigError):
            coerce_session("not a session")

    def test_no_cache_session(self, tmp_path):
        with Session(cache=False) as session:
            session.run("st", mechanism="inorder", scale=SCALE)
            session.run("st", mechanism="inorder", scale=SCALE)
            assert session.submitted == 2
            assert session.cache is None

    def test_resolve_cache_dir_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        assert str(resolve_cache_dir()) == str(tmp_path / "envcache")
        assert resolve_cache_dir("explicit") == "explicit"
        with Session() as session:
            session.run("st", mechanism="inorder", scale=SCALE)
            assert (tmp_path / "envcache").is_dir()


class TestConvenienceShims:
    def test_run_workload_memoises(self, scratch_default):
        first = run_workload("st", mechanism="inorder", scale=SCALE)
        second = run_workload("st", mechanism="inorder", scale=SCALE)
        assert scratch_default.submitted == 1
        assert scratch_default.cache_hits == 1
        assert first == second

    def test_run_workload_point_warm_hits_sweep(self, scratch_default):
        compare_mechanisms("st", mechanisms=("inorder", "nvr"), scale=SCALE)
        assert scratch_default.submitted == 2
        run_workload("st", mechanism="nvr", scale=SCALE)
        assert scratch_default.submitted == 2
        assert scratch_default.cache_hits == 1

    def test_compare_accepts_session(self, scratch_session):
        results = compare_mechanisms(
            "st", mechanisms=("inorder", "nvr"), scale=SCALE, runner=scratch_session
        )
        assert set(results) == {"inorder", "nvr"}
        assert scratch_session.submitted == 2


class TestResultSet:
    @pytest.fixture(scope="class")
    def rs(self, tmp_path_factory):
        with Session(cache_dir=tmp_path_factory.mktemp("cache")) as session:
            return session.sweep(
                Grid(
                    workload=["st", "ds"],
                    mechanism=["inorder", "nvr"],
                    scale=SCALE,
                )
            )

    def test_filter_and_one(self, rs):
        assert len(rs.filter(mechanism="nvr")) == 2
        assert rs.one(workload="st", mechanism="nvr").total_cycles > 0
        with pytest.raises(ConfigError, match="found 2"):
            rs.one(mechanism="nvr")
        with pytest.raises(ConfigError, match="found 0"):
            rs.one(mechanism="dvr")

    def test_filter_by_derived_axis(self, tmp_path):
        with Session(cache_dir=tmp_path) as session:
            rs = session.sweep(
                Grid(workload="st", mechanism="nvr", nvr_depth=[1, 8], scale=SCALE)
            )
        assert rs.one(nvr_depth=1).total_cycles >= rs.one(nvr_depth=8).total_cycles

    def test_filter_by_cpu_traffic_axis(self, tmp_path):
        with Session(cache_dir=tmp_path) as session:
            rs = session.sweep(
                Grid(workload="st", mechanism="nvr", cpu_traffic=[False, True],
                     scale=SCALE)
            )
        assert len(rs.filter(cpu_traffic=True)) == 1
        noisy = rs.one(cpu_traffic=True)
        assert noisy.total_cycles >= rs.one(cpu_traffic=False).total_cycles
        # ...and the axis shows up as a record column since it varies.
        assert [r["cpu_traffic"] for r in rs.to_records()] == [False, True]

    def test_records_name_varying_derived_axes(self, tmp_path):
        # An ablation export must say which axis value each row is —
        # including the value that canonicalises to the default platform.
        with Session(cache_dir=tmp_path) as session:
            rs = session.sweep(
                Grid(workload="st", mechanism="nvr", nvr_depth=[1, 8], scale=SCALE)
            )
        assert [r["nvr_depth"] for r in rs.to_records()] == [1, 8]
        assert "nvr_depth" in rs.to_csv().splitlines()[0]
        # Axes that never leave the default platform stay out of the way.
        assert "l2_kib" not in rs.to_records()[0]

    def test_speedup_records_keep_derived_axes(self, tmp_path):
        with Session(cache_dir=tmp_path) as session:
            rs = session.sweep(
                Grid(workload="st", mechanism="nvr", nvr_depth=[1, 8], scale=SCALE)
            )
        records = rs.speedup_over(nvr_depth=1)
        assert len(records) == 1
        assert records[0]["nvr_depth"] == 8
        assert records[0]["speedup"] > 0

    def test_pivot(self, rs):
        pivot = rs.pivot(rows="workload", cols="mechanism", value="total_cycles")
        assert pivot.rows == ["st", "ds"]
        assert pivot.cols == ["inorder", "nvr"]
        assert pivot.cell("st", "nvr") == rs.one(
            workload="st", mechanism="nvr"
        ).total_cycles
        assert "workload\\mechanism" in pivot.to_markdown()

    def test_pivot_rejects_duplicate_cells(self, rs):
        with pytest.raises(ConfigError, match="not unique"):
            rs.pivot(rows="mechanism", cols="dtype")

    def test_speedup_over(self, rs):
        records = rs.speedup_over(mechanism="inorder")
        assert len(records) == 2  # one nvr point per workload
        for record in records:
            assert record["mechanism"] == "nvr"
            base = rs.one(workload=record["workload"], mechanism="inorder")
            ours = rs.one(workload=record["workload"], mechanism="nvr")
            assert record["speedup"] == pytest.approx(
                base.total_cycles / ours.total_cycles
            )

    def test_speedup_over_requires_baseline(self, rs):
        with pytest.raises(ConfigError, match="baseline axis"):
            rs.speedup_over()

    def test_speedup_over_zero_metric_is_config_error(self, rs):
        with pytest.raises(ConfigError, match="is 0 for"):
            rs.speedup_over(value=lambda result: 0, mechanism="inorder")

    def test_speedup_over_duplicate_baseline_is_config_error(self, rs):
        entries = list(rs)
        doubled = ResultSet(entries + [entries[0]])  # st/inorder twice
        with pytest.raises(ConfigError, match="more than one"):
            doubled.speedup_over(mechanism="inorder")

    def test_to_records(self, rs):
        records = rs.to_records()
        assert len(records) == 4
        assert records[0]["workload"] == "st"
        assert records[0]["total_cycles"] > 0
        assert 0 <= records[0]["coverage"] <= 1

    def test_csv_round_trip(self, rs):
        text = rs.to_csv()
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == len(rs)
        for row, record in zip(rows, rs.to_records()):
            for key, value in record.items():
                assert row[key] == ("" if value is None else str(value))

    def test_json_round_trip(self, rs, tmp_path):
        path = tmp_path / "rs.json"
        text = rs.to_json(path)
        assert json.loads(text) == rs.to_records()
        assert json.loads(path.read_text()) == rs.to_records()

    def test_csv_write_to_path(self, rs, tmp_path):
        path = tmp_path / "rs.csv"
        text = rs.to_csv(path)
        assert path.read_text() == text

    def test_markdown_contains_all_cells(self, rs):
        text = rs.to_markdown()
        lines = text.splitlines()
        assert len(lines) == 2 + len(rs)
        for record in rs.to_records():
            assert f"| {record['workload']} |" in text
            assert str(record["total_cycles"]) in text

    def test_to_json_maps_nonfinite_to_null(self):
        from repro.workloads.base import TraceStats

        stats = TraceStats(
            gather_elements=0,
            unique_slots=0,
            footprint_bytes=0,
            reuse_factor=float("nan"),
            mean_row_length=0.0,
            row_length_cv=float("inf"),
            locality_score=0.0,
        )
        rs = ResultSet([(RunSpec("st", kind="trace", scale=SCALE), stats)])
        text = rs.to_json()
        assert "NaN" not in text and "Infinity" not in text
        record = json.loads(text)[0]  # strict parse succeeds
        assert record["reuse_factor"] is None

    def test_trace_records(self, tmp_path):
        with Session(cache_dir=tmp_path) as session:
            rs = session.sweep(Grid(workload="st", kind="trace", scale=SCALE))
        record = rs.to_records()[0]
        assert record["kind"] == "trace"
        assert record["gather_elements"] > 0
        assert record["footprint_bytes"] > 0

    def test_slicing_returns_resultset(self, rs):
        assert isinstance(rs[:2], ResultSet)
        spec, result = rs[0]
        assert spec.workload == "st"
        assert result.total_cycles > 0


class TestCLISessionFlags:
    def test_shared_flags_on_every_executing_subcommand(self):
        from repro.__main__ import build_parser

        parser = build_parser()
        for argv in (
            ["run", "st", "--jobs", "3", "--cache-dir", "x"],
            ["compare", "st", "--jobs", "3", "--cache-dir", "x"],
            ["sweep", "--jobs", "3", "--cache-dir", "x"],
            ["ablate", "nvr-depth", "--jobs", "3", "--cache-dir", "x"],
            ["figures", "--jobs", "3", "--cache-dir", "x"],
        ):
            args = parser.parse_args(argv)
            assert args.jobs == 3
            assert args.cache_dir == "x"

    def test_unset_flags_fall_back_to_defaults(self):
        from repro.__main__ import build_parser

        args = build_parser().parse_args(["run", "st"])
        assert not hasattr(args, "jobs")  # SUPPRESS: factory fills defaults
        session = session_from_args(args)
        assert session.jobs == 1
        session.close()

    def test_cache_dir_survives_parent_then_subcommand(self):
        # The old argparse.SUPPRESS clobber workaround, now the uniform
        # convention: the flag binds at either nesting level.
        from repro.__main__ import build_parser

        parser = build_parser()
        before = parser.parse_args(["cache", "--cache-dir", "x", "gc", "--max-mb", "1"])
        after = parser.parse_args(["cache", "gc", "--max-mb", "1", "--cache-dir", "y"])
        assert before.cache_dir == "x"
        assert after.cache_dir == "y"

    def test_run_command_is_cached(self, tmp_path, capsys):
        from repro.__main__ import main

        argv = ["run", "st", "--scale", str(SCALE)]
        argv += ["--cache-dir", str(tmp_path / "c")]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert warm == cold
        from repro.runner import ResultCache

        assert len(ResultCache(tmp_path / "c")) == 1

    def test_sweep_json_uses_resultset_records(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "sweep.json"
        argv = ["sweep", "--workloads", "st", "--mechanisms", "inorder,nvr"]
        argv += ["--scales", str(SCALE), "--cache-dir", str(tmp_path / "c")]
        argv += ["--json", str(out)]
        assert main(argv) == 0
        records = json.loads(out.read_text())
        assert [r["mechanism"] for r in records] == ["inorder", "nvr"]
        assert all("total_cycles" in r for r in records)


class TestSessionClose:
    def test_close_is_idempotent(self, tmp_path):
        session = Session(cache_dir=tmp_path)
        session.run("st", scale=SCALE)
        session.close()
        session.close()  # a second close is a no-op, not an error

    def test_close_before_first_use_is_safe(self, tmp_path):
        Session(cache_dir=tmp_path).close()

    def test_close_survives_a_failed_constructor(self):
        # __del__ fires even when __init__ raised before any attribute
        # was set; close() must not turn that into an AttributeError.
        with pytest.raises(ConfigError):
            Session(runner=object(), jobs=4)
        broken = Session.__new__(Session)
        broken.close()  # no _runner/_owns_runner attributes at all
        del broken

    def test_del_closes_silently(self, tmp_path):
        # Interpreter-shutdown/atexit path: __del__ must swallow every
        # close-time error rather than spray "Exception ignored in".
        session = Session(cache_dir=tmp_path)
        session.run("st", scale=SCALE)

        def explode():
            raise RuntimeError("backend already torn down")

        session._runner.close = explode
        session.__del__()  # swallowed
        session._runner = None  # let the real del find nothing to do

    def test_wrapped_runner_is_not_closed(self, tmp_path):
        from repro.runner import ResultCache, SweepRunner

        runner = SweepRunner(cache=ResultCache(tmp_path))
        closed = []
        runner.close = lambda: closed.append(True)
        session = Session(runner=runner)
        session.close()
        assert closed == []  # the session never owned it
