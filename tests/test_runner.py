"""The sweep runner: plan expansion, cache, pool, CLI integration.

The acceptance properties of the subsystem:

* plans expand deterministically and specs content-address stably;
* the cache turns repeated runs into zero executor submissions;
* changing the code-version salt invalidates every entry;
* results are bit-identical for every ``--jobs`` setting.
"""

import dataclasses
import io
import json
import os
import shutil

import pytest

from repro.__main__ import main as cli_main
from repro.api import compare_mechanisms, run_workload
from repro.errors import SimulationError
from repro.runner import (
    MemorySpec,
    NVRSpec,
    Progress,
    ResultCache,
    RunSpec,
    SweepRunner,
    execute_spec,
    expand,
    payload_to_result,
    result_to_payload,
    shape_l2,
    trace_to_payload,
)
from repro.workloads.base import TraceStats

SCALE = 0.05


def small_plan():
    return expand(["ds", "st"], ["inorder", "nvr"], scales=SCALE)


def as_dicts(results):
    return [dataclasses.asdict(r) for r in results]


class TestPlan:
    def test_expand_cartesian_order(self):
        specs = expand(
            ["ds", "st"],
            ["inorder", "nvr"],
            dtypes=["int8", "fp16"],
            scales=[0.1, 0.2],
            seeds=[0, 1],
        )
        assert len(specs) == 2 * 2 * 2 * 2 * 2
        # Workload-major order, matching the figures' bar order.
        assert [s.workload for s in specs[:16]] == ["ds"] * 16
        assert specs[0].mechanism == "inorder"
        assert specs[0].dtype == "int8"
        assert [s.seed for s in specs[:2]] == [0, 1]

    def test_expand_scalar_axes(self):
        specs = expand("gcn", "nvr", scales=0.3)
        assert len(specs) == 1
        assert specs[0] == RunSpec("gcn", "nvr", scale=0.3)

    def test_key_stable_under_workload_arg_order(self):
        a = RunSpec("ds", workload_args=(("drift", 1.0), ("topk_ratio", 4)))
        b = RunSpec("ds", workload_args=(("topk_ratio", 4), ("drift", 1.0)))
        assert a == b
        assert a.key() == b.key()

    def test_key_distinguishes_every_axis(self):
        from repro.core import NVRConfig
        from repro.sim.memory.hierarchy import MemoryConfig
        from repro.sim.npu.executor import ExecutorConfig

        base = RunSpec("ds")
        variants = [
            RunSpec("st"),
            RunSpec("ds", mechanism="imp"),
            RunSpec("ds", dtype="int8"),
            RunSpec("ds", nsb=True),
            RunSpec("ds", scale=0.5),
            RunSpec("ds", seed=1),
            RunSpec("ds", with_base=True),
            RunSpec("ds", memory=MemorySpec(l2_kib=128)),
            RunSpec("ds", memory=MemoryConfig().with_cpu_traffic()),
            RunSpec("ds", nvr=NVRSpec(depth_tiles=4)),
            RunSpec("ds", nvr=NVRConfig(depth_tiles=2)),
            RunSpec("ds", executor=ExecutorConfig(issue_width=4)),
            RunSpec("ds", workload_args=(("topk_ratio", 4),)),
            RunSpec("ds", kind="trace"),
        ]
        keys = {base.key()} | {v.key() for v in variants}
        assert len(keys) == len(variants) + 1

    def test_round_trip_through_dict(self):
        spec = RunSpec(
            "gcn",
            mechanism="nvr",
            scale=0.2,
            seed=3,
            memory=MemorySpec(l2_kib=128, nsb_kib=8),
            nvr=NVRSpec(depth_tiles=4),
            workload_args=(("topk_ratio", 4),),
        )
        clone = RunSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone == spec
        assert clone.key() == spec.key()

    def test_convenience_args_fold_into_system(self):
        # Shorthand overrides and an explicit SystemSpec describing the
        # same platform are the *same point*: equal, same content key.
        from repro.spec import SystemSpec

        shorthand = RunSpec("ds", mechanism="nvr", nsb=True, scale=0.2)
        explicit = RunSpec(
            "ds",
            scale=0.2,
            system=SystemSpec(mechanism="nvr", nsb=True),
        )
        assert shorthand == explicit
        assert shorthand.key() == explicit.key()
        assert explicit.mechanism == "nvr" and explicit.nsb is True

    def test_system_plus_overrides_rejected(self):
        from repro.errors import ConfigError
        from repro.spec import SystemSpec

        with pytest.raises(ConfigError, match="not both"):
            RunSpec("ds", system=SystemSpec(), memory=MemorySpec(l2_kib=128))

    def test_system_plus_conflicting_scalars_rejected(self):
        from repro.errors import ConfigError
        from repro.spec import SystemSpec

        with pytest.raises(ConfigError, match="conflicts with"):
            RunSpec("ds", mechanism="inorder", system=SystemSpec())
        with pytest.raises(ConfigError, match="conflicts with"):
            # Explicit 'nvr' conflicting with the system is caught too
            # (the default is None, not 'nvr', exactly so this cannot
            # be silently resolved).
            RunSpec("ds", mechanism="nvr", system=SystemSpec(mechanism="imp"))
        with pytest.raises(ConfigError, match="conflicts with"):
            RunSpec("ds", nsb=True, system=SystemSpec(mechanism="nvr"))
        # Consistent repetition stays fine.
        spec = RunSpec("ds", mechanism="imp", system=SystemSpec(mechanism="imp"))
        assert spec.mechanism == "imp"

    def test_specs_are_hashable_with_object_overrides(self):
        from repro.sim.memory.hierarchy import MemoryConfig

        a = RunSpec("ds", memory=MemoryConfig().with_nsb(True))
        b = RunSpec("ds", memory=MemoryConfig().with_nsb(True))
        c = RunSpec("ds")
        assert hash(a) == hash(b)
        assert a.system is not None and hash(a.system) == hash(b.system)
        assert {a, b, c} == {a, c}  # set dedupe mirrors key() dedupe

    def test_rejects_non_scalar_workload_args(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            RunSpec("ds", workload_args=(("ratios", (1, 2)),))

    def test_rejects_unknown_dtype_at_plan_build(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="fp32"):
            RunSpec("ds", dtype="fp32")
        with pytest.raises(ConfigError, match="fp32"):
            compare_mechanisms("ds", mechanisms=("nvr",), dtype="fp32")

    def test_numeric_types_normalised_in_key(self):
        assert RunSpec("ds", scale=1).key() == RunSpec("ds", scale=1.0).key()
        assert RunSpec("ds", seed=0).key() == RunSpec("ds", seed=False).key()
        assert RunSpec("ds", nsb=1).key() == RunSpec("ds", nsb=True).key()
        assert RunSpec("ds", with_base=1).key() == RunSpec("ds", with_base=True).key()

    def test_cache_entry_with_non_object_json_is_a_miss(self, tmp_path):
        from repro.runner import ResultCache

        cache = ResultCache(tmp_path)
        spec = RunSpec("st", scale=SCALE)
        path = cache.put(spec, {"x": 1})
        path.write_text("null", encoding="utf-8")
        assert cache.get(spec) is None

    def test_memory_spec_builds_shaped_hierarchy(self):
        memory = MemorySpec(l2_kib=128, nsb_kib=8).build()
        assert memory.l2.size_bytes == 128 * 1024
        assert memory.nsb is not None
        assert memory.nsb.size_bytes == 8 * 1024

    def test_shape_l2_matches_legacy_alias(self):
        from repro.analysis.experiments import l2_config

        for kib in (64, 192, 256, 1024):
            assert shape_l2(kib) == l2_config(kib)


class TestPayloads:
    def test_run_result_round_trip(self):
        result = run_workload("st", mechanism="nvr", scale=SCALE, with_base=True)
        clone = payload_to_result(json.loads(json.dumps(result_to_payload(result))))
        assert dataclasses.asdict(clone) == dataclasses.asdict(result)
        assert clone.stall_cycles == result.stall_cycles
        assert clone.stats.coverage() == result.stats.coverage()

    def test_trace_spec_executes(self):
        payload = execute_spec(RunSpec("gcn", kind="trace", scale=0.1))
        stats = TraceStats(**payload["trace"])
        assert stats.gather_elements > 0
        assert stats.reuse_factor >= 1.0

    def test_payload_construction_normalises_nonfinite(self):
        # Normalised at construction, not just serialisation: the
        # in-memory payload a cold run keeps and the JSON a warm run
        # reads back must materialise identically.
        stats = TraceStats(
            gather_elements=0,
            unique_slots=0,
            footprint_bytes=0,
            reuse_factor=float("nan"),
            mean_row_length=0.0,
            row_length_cv=float("inf"),
            locality_score=0.0,
        )
        payload = trace_to_payload(stats)
        assert payload["trace"]["reuse_factor"] is None
        assert payload["trace"]["row_length_cv"] is None


class TestCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = RunSpec("st", scale=SCALE)
        assert cache.get(spec) is None
        cache.put(spec, {"kind": "sim", "x": 1})
        assert cache.get(spec) == {"kind": "sim", "x": 1}
        assert (cache.hits, cache.misses, cache.writes) == (1, 1, 1)
        assert len(cache) == 1

    def test_default_salt_embeds_code_fingerprint(self, tmp_path):
        from repro.runner.cache import CACHE_SALT, code_fingerprint

        fp = code_fingerprint()
        assert fp == code_fingerprint()  # memoised, stable
        cache = ResultCache(tmp_path)
        assert cache.salt == f"{CACHE_SALT}:{fp}"
        # Default-salt caches interoperate within one code version.
        spec = RunSpec("st", scale=SCALE)
        cache.put(spec, {"x": 1})
        assert ResultCache(tmp_path).get(spec) == {"x": 1}

    def test_salt_change_invalidates(self, tmp_path):
        spec = RunSpec("st", scale=SCALE)
        ResultCache(tmp_path, salt="v1").put(spec, {"x": 1})
        assert ResultCache(tmp_path, salt="v2").get(spec) is None
        assert ResultCache(tmp_path, salt="v1").get(spec) == {"x": 1}

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = RunSpec("st", scale=SCALE)
        path = cache.put(spec, {"x": 1})
        path.write_text("{truncated", encoding="utf-8")
        assert cache.get(spec) is None
        cache.put(spec, {"x": 2})
        assert cache.get(spec) == {"x": 2}

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(RunSpec("st"), {"x": 1})
        cache.put(RunSpec("ds"), {"x": 2})
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_clear_sweeps_orphaned_tmp_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put(RunSpec("st"), {"x": 1})
        orphan = path.parent / "deadbeef0123.tmp"
        orphan.write_text("partial", encoding="utf-8")
        cache.clear()
        assert not orphan.exists()

    def test_entry_at_wrong_path_is_miss(self, tmp_path):
        # A worker file hand-merged at the wrong path must not be served
        # for the spec that happens to hash there.
        cache = ResultCache(tmp_path)
        spec_a = RunSpec("st", scale=SCALE)
        spec_b = RunSpec("ds", scale=SCALE)
        path_a = cache.put(spec_a, {"x": 1})
        target = cache.path_for(spec_b)
        target.parent.mkdir(parents=True, exist_ok=True)
        shutil.copy(path_a, target)
        assert cache.get(spec_b) is None
        assert cache.get(spec_a) == {"x": 1}

    def test_entry_with_foreign_salt_is_miss(self, tmp_path):
        # An entry carried over from a different code version (its salt
        # field disagrees) degrades to a miss even at the right path.
        cache = ResultCache(tmp_path, salt="v1")
        spec = RunSpec("st", scale=SCALE)
        path = cache.put(spec, {"x": 1})
        entry = json.loads(path.read_text(encoding="utf-8"))
        entry["salt"] = "v0"
        path.write_text(json.dumps(entry), encoding="utf-8")
        assert cache.get(spec) is None

    def test_nonfinite_payload_values_stored_as_null(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = RunSpec("st", scale=SCALE)
        path = cache.put(spec, {"kind": "sim", "cv": float("nan")})
        assert "NaN" not in path.read_text(encoding="utf-8")
        assert cache.get(spec) == {"kind": "sim", "cv": None}


class TestCacheGC:
    def _fill(self, tmp_path, n=4):
        cache = ResultCache(tmp_path)
        workloads = ("st", "ds", "gcn", "gat")[:n]
        paths = {}
        for i, w in enumerate(workloads):
            spec = RunSpec(w, scale=SCALE)
            paths[w] = cache.put(spec, {"kind": "sim", "pad": "x" * 200})
            # Distinct, strictly increasing access times: st oldest.
            os.utime(paths[w], (1_000_000 + i, 1_000_000 + i))
        return cache, paths

    def test_gc_evicts_least_recently_accessed_first(self, tmp_path):
        cache, paths = self._fill(tmp_path)
        total = cache.size_bytes()
        oldest_two = paths["st"].stat().st_size + paths["ds"].stat().st_size
        report = cache.gc(max_bytes=total - oldest_two)
        assert report.removed == 2
        assert not paths["st"].exists() and not paths["ds"].exists()
        assert paths["gcn"].exists() and paths["gat"].exists()
        assert report.kept == 2
        assert report.kept_bytes == total - oldest_two

    def test_gc_hit_refreshes_recency(self, tmp_path):
        cache, paths = self._fill(tmp_path)
        # A cache hit touches the entry, so the oldest-by-write survives.
        assert cache.get(RunSpec("st", scale=SCALE)) is not None
        evict_two = cache.size_bytes() - (
            paths["gat"].stat().st_size + paths["st"].stat().st_size
        )
        cache.gc(max_bytes=evict_two)
        assert paths["st"].exists()
        assert not paths["ds"].exists()

    def test_gc_dry_run_deletes_nothing(self, tmp_path):
        cache, paths = self._fill(tmp_path)
        report = cache.gc(max_bytes=0, dry_run=True)
        assert report.removed == report.examined == 4
        assert report.dry_run
        assert all(p.exists() for p in paths.values())
        assert len(cache) == 4

    def test_gc_noop_when_under_bound(self, tmp_path):
        cache, paths = self._fill(tmp_path)
        report = cache.gc(max_bytes=10 * 1024 * 1024)
        assert report.removed == 0
        assert report.freed_bytes == 0
        assert len(cache) == 4


class FailingBackend:
    """Yields ``fail_after`` real results, then dies mid-plan."""

    jobs = 1

    def __init__(self, fail_after: int = 1) -> None:
        self.fail_after = fail_after

    def run(self, pending):
        for i, (key, spec) in enumerate(pending):
            if i >= self.fail_after:
                raise SimulationError("backend died mid-plan")
            yield key, spec, execute_spec(spec)

    def close(self) -> None:
        pass


class RecordingProgress:
    def __init__(self) -> None:
        self.events = []

    def plan_started(self, total, unique, cached):
        self.events.append("started")

    def point_done(self, label, source, done, total):
        self.events.append(f"point:{done}")

    def plan_finished(self, submitted, hits, elapsed):
        self.events.append("finished")

    def plan_failed(self, done, total, elapsed):
        self.events.append(f"failed:{done}/{total}")


class TestPlanFailure:
    def test_partial_counts_recorded_and_streamed_results_cached(self, tmp_path):
        plan = small_plan()  # 4 unique points
        cache = ResultCache(tmp_path)
        runner = SweepRunner(cache=cache, backend=FailingBackend(fail_after=2))
        with pytest.raises(SimulationError, match="mid-plan"):
            runner.run_plan(plan)
        assert runner.submitted == 2
        assert runner.last_report is not None
        assert runner.last_report.submitted == 2
        assert runner.last_report.unique == 4
        assert len(cache) == 2
        # The streamed results are ordinary cache entries: a retry of
        # the same plan resumes warm.
        retry = SweepRunner(cache=ResultCache(tmp_path))
        retry.run_plan(plan)
        assert retry.cache_hits == 2
        assert retry.submitted == 2

    def test_observer_gets_plan_failed_not_finished(self):
        progress = RecordingProgress()
        runner = SweepRunner(backend=FailingBackend(fail_after=1), progress=progress)
        with pytest.raises(SimulationError):
            runner.run_plan(small_plan())
        assert progress.events[0] == "started"
        assert progress.events[-1] == "failed:1/4"
        assert "finished" not in progress.events

    def test_legacy_observer_without_plan_failed_keeps_real_error(self):
        # A custom observer written against the pre-plan_failed protocol
        # must not turn the backend's failure into an AttributeError.
        class LegacyProgress:
            def plan_started(self, total, unique, cached):
                pass

            def point_done(self, label, source, done, total):
                pass

            def plan_finished(self, submitted, hits, elapsed):
                pass

        runner = SweepRunner(
            backend=FailingBackend(fail_after=0), progress=LegacyProgress()
        )
        with pytest.raises(SimulationError, match="mid-plan"):
            runner.run_plan(small_plan())

    def test_progress_plan_failed_clears_live_line(self):
        buffer = io.StringIO()
        progress = Progress(stream=buffer, live=True)
        progress.plan_started(2, 2, 0)
        progress.point_done("st/nvr", "run", 1, 2)
        progress.plan_failed(1, 2, 0.5)
        text = buffer.getvalue()
        # The live \r line is cleared before the failure summary, so a
        # traceback printed next never glues onto the point trail.
        assert text.split("\r")[-1] == "plan failed: 1/2 points done, 0.5s\n"


class TestSweepRunner:
    def test_dedupes_within_plan(self):
        runner = SweepRunner()
        spec = RunSpec("st", scale=SCALE)
        results = runner.run_plan([spec, spec, spec])
        assert runner.submitted == 1
        assert runner.last_report.total == 3
        assert runner.last_report.unique == 1
        assert len({r.total_cycles for r in results}) == 1

    def test_warm_cache_zero_submissions(self, tmp_path):
        plan = small_plan()
        cold = SweepRunner(cache=ResultCache(tmp_path))
        cold_results = cold.run_plan(plan)
        assert cold.submitted == len(plan)

        warm = SweepRunner(cache=ResultCache(tmp_path))
        warm_results = warm.run_plan(plan)
        assert warm.submitted == 0
        assert warm.cache_hits == len(plan)
        assert as_dicts(warm_results) == as_dicts(cold_results)

    def test_parallel_equals_serial(self, tmp_path):
        plan = small_plan()
        serial = SweepRunner(jobs=1).run_plan(plan)
        with SweepRunner(jobs=2) as parallel_runner:
            parallel = parallel_runner.run_plan(plan)
        assert as_dicts(parallel) == as_dicts(serial)

    def test_worker_pool_persists_across_plans(self):
        with SweepRunner(jobs=2) as runner:
            runner.run_plan(small_plan())
            pool = runner.backend._executor
            assert pool is not None
            runner.run_plan([RunSpec("gcn", scale=SCALE), RunSpec("gat", scale=SCALE)])
            assert runner.backend._executor is pool
        assert runner.backend._executor is None  # close() tore it down

    def test_deterministic_across_jobs_with_cache(self, tmp_path):
        plan = small_plan()
        a = SweepRunner(jobs=2, cache=ResultCache(tmp_path / "a"))
        b = SweepRunner(jobs=3, cache=ResultCache(tmp_path / "b"))
        assert as_dicts(a.run_plan(plan)) == as_dicts(b.run_plan(plan))
        # And the cached payload files are byte-identical too.
        files_a = sorted(p.name for p in ResultCache(tmp_path / "a").entries())
        files_b = sorted(p.name for p in ResultCache(tmp_path / "b").entries())
        assert files_a == files_b
        for name in files_a:
            pa = next(ResultCache(tmp_path / "a").root.glob(f"??/{name}"))
            pb = next(ResultCache(tmp_path / "b").root.glob(f"??/{name}"))
            assert pa.read_bytes() == pb.read_bytes()

    def test_runner_matches_direct_api(self):
        spec = RunSpec("st", mechanism="nvr", scale=SCALE, with_base=True)
        via_runner = SweepRunner().run(spec)
        direct = run_workload("st", mechanism="nvr", scale=SCALE, with_base=True)
        assert dataclasses.asdict(via_runner) == dataclasses.asdict(direct)

    def test_trace_plan(self, tmp_path):
        runner = SweepRunner(cache=ResultCache(tmp_path))
        specs = [RunSpec(w, kind="trace", scale=0.1) for w in ("ds", "st")]
        first = runner.run_plan(specs)
        assert all(isinstance(t, TraceStats) for t in first)
        warm = SweepRunner(cache=ResultCache(tmp_path))
        assert as_dicts(warm.run_plan(specs)) == as_dicts(first)
        assert warm.submitted == 0


class TestCompareMechanisms:
    def test_routes_through_runner(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = SweepRunner(cache=cache)
        table = compare_mechanisms(
            "st", mechanisms=("inorder", "nvr"), runner=runner, scale=SCALE
        )
        assert set(table) == {"inorder", "nvr"}
        assert runner.submitted == 2
        # Direct (runner-less) call gives identical results.
        direct = compare_mechanisms("st", mechanisms=("inorder", "nvr"), scale=SCALE)
        assert as_dicts(table.values()) == as_dicts(direct.values())

    def test_object_overrides_route_through_runner(self, tmp_path):
        # The acceptance property of the SystemSpec layer: memory= and
        # nvr_config= overrides are plan content, not a serial fallback —
        # a warm rerun is served entirely from the cache.
        from repro.core import NVRConfig
        from repro.sim.memory.hierarchy import MemoryConfig

        kwargs = dict(
            mechanisms=("inorder", "nvr"),
            scale=SCALE,
            memory=MemoryConfig().with_nsb(True),
            nvr_config=NVRConfig(depth_tiles=2),
        )
        cold = SweepRunner(cache=ResultCache(tmp_path))
        table = compare_mechanisms("gcn", runner=cold, **kwargs)
        assert cold.submitted == 2
        assert table["inorder"].stats.nsb.demand_accesses > 0

        warm = SweepRunner(cache=ResultCache(tmp_path))
        rerun = compare_mechanisms("gcn", runner=warm, **kwargs)
        assert warm.submitted == 0
        assert warm.cache_hits == 2
        assert as_dicts(rerun.values()) == as_dicts(table.values())

    def test_nvr_config_with_no_nvr_mechanism_rejected(self):
        # If *no* compared mechanism uses the config, the sweep would
        # silently ignore it — that is an error, mirroring run_workload.
        from repro.core import NVRConfig
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="none of the compared"):
            compare_mechanisms(
                "st",
                mechanisms=("inorder", "stream"),
                scale=SCALE,
                nvr_config=NVRConfig(depth_tiles=16),
            )

    def test_nvr_config_applies_only_to_nvr_family(self):
        # nvr_config= alongside baseline mechanisms tunes only the
        # mechanisms that declare uses_nvr_config; the baselines' points
        # stay identical to an untuned run (same cache identity).
        from repro.core import NVRConfig

        runner = SweepRunner()
        tuned = compare_mechanisms(
            "st",
            mechanisms=("inorder", "nvr"),
            runner=runner,
            scale=SCALE,
            nvr_config=NVRConfig(depth_tiles=2),
        )
        plain = compare_mechanisms(
            "st", mechanisms=("inorder",), runner=runner, scale=SCALE
        )
        assert tuned["inorder"].total_cycles == plain["inorder"].total_cycles
        assert tuned["nvr"].total_cycles > 0

    def test_workload_kwargs_stay_cacheable(self, tmp_path):
        runner = SweepRunner(cache=ResultCache(tmp_path))
        compare_mechanisms(
            "ds",
            mechanisms=("stream",),
            runner=runner,
            scale=SCALE,
            topk_ratio=4,
        )
        warm = SweepRunner(cache=ResultCache(tmp_path))
        compare_mechanisms(
            "ds",
            mechanisms=("stream",),
            runner=warm,
            scale=SCALE,
            topk_ratio=4,
        )
        assert warm.submitted == 0


class TestFigureRunners:
    def test_fig5_shares_plan_and_caches(self, tmp_path):
        from repro.analysis.experiments import fig5_latency_breakdown

        cold = SweepRunner(cache=ResultCache(tmp_path))
        res = fig5_latency_breakdown(
            workloads=("st",), panels=("fp16",), scale=SCALE, runner=cold
        )
        assert cold.submitted == 6
        warm = SweepRunner(cache=ResultCache(tmp_path))
        res2 = fig5_latency_breakdown(
            workloads=("st",), panels=("fp16",), scale=SCALE, runner=warm
        )
        assert warm.submitted == 0
        assert res2.panels == res.panels

    def test_fig9_memory_override_grid(self, tmp_path):
        from repro.analysis.experiments import fig9_nsb_sensitivity

        runner = SweepRunner(cache=ResultCache(tmp_path))
        res = fig9_nsb_sensitivity(
            nsb_sizes=(4, 16), l2_sizes=(64, 256), scale=0.1, runner=runner
        )
        assert runner.submitted == 4
        assert res.cell(16, 256) > 0


def _seed_cache(cache_dir, workloads="st"):
    """Populate ``cache_dir`` with a tiny single-mechanism sweep."""
    argv = ["sweep", "--workloads", workloads, "--mechanisms", "inorder"]
    cli_main(argv + ["--scales", str(SCALE), "--cache-dir", str(cache_dir)])


class TestCLI:
    def test_sweep_command(self, tmp_path, capsys):
        argv = ["sweep", "--workloads", "st", "--mechanisms", "inorder,nvr"]
        argv += ["--scales", str(SCALE), "--cache-dir", str(tmp_path / "c")]
        rc = cli_main(argv + ["--json", str(tmp_path / "sweep.json")])
        out = capsys.readouterr().out
        assert rc == 0
        assert "2 points" in out
        records = json.loads((tmp_path / "sweep.json").read_text())
        assert len(records) == 2
        # ResultSet record format: flat axis columns + metrics.
        assert records[0]["workload"] == "st"
        assert records[0]["mechanism"] == "inorder"
        assert records[0]["total_cycles"] > 0

    def test_sweep_rejects_unknown_axis_value(self, tmp_path):
        with pytest.raises(SystemExit):
            cli_main(["sweep", "--workloads", "nope", "--no-cache"])

    def test_compare_command_with_cache(self, tmp_path, capsys):
        args = ["compare", "st", "--scale", str(SCALE)]
        args += ["--cache-dir", str(tmp_path / "c")]
        assert cli_main(args) == 0
        cold = capsys.readouterr().out
        assert cli_main(args) == 0
        warm = capsys.readouterr().out
        assert warm == cold

    def test_cache_command(self, tmp_path, capsys):
        cache_dir = tmp_path / "c"
        _seed_cache(cache_dir)
        capsys.readouterr()
        assert cli_main(["cache", "--cache-dir", str(cache_dir)]) == 0
        assert "entries   : 1" in capsys.readouterr().out
        assert cli_main(["cache", "--cache-dir", str(cache_dir), "--clear"]) == 0
        assert "cleared 1" in capsys.readouterr().out

    def test_cache_gc_subcommand(self, tmp_path, capsys):
        cache_dir = tmp_path / "c"
        _seed_cache(cache_dir, workloads="st,ds")
        capsys.readouterr()
        gc_argv = ["cache", "gc", "--max-mb", "0"]
        rc = cli_main(gc_argv + ["--dry-run", "--cache-dir", str(cache_dir)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "would evict 2/2" in out
        assert len(ResultCache(cache_dir)) == 2  # dry run kept everything
        assert cli_main(gc_argv + ["--cache-dir", str(cache_dir)]) == 0
        assert "evicted 2/2" in capsys.readouterr().out
        assert len(ResultCache(cache_dir)) == 0

    def test_cache_gc_honours_parent_cache_dir_flag(self, tmp_path, capsys):
        # `repro cache --cache-dir X gc` must operate on X, not on the
        # default directory (the subparser must not clobber the flag).
        cache_dir = tmp_path / "c"
        _seed_cache(cache_dir)
        capsys.readouterr()
        argv = ["cache", "--cache-dir", str(cache_dir), "gc", "--max-mb", "0"]
        assert cli_main(argv) == 0
        assert "evicted 1/1" in capsys.readouterr().out
        assert len(ResultCache(cache_dir)) == 0

    def test_cache_gc_rejects_negative_max_mb(self, tmp_path, capsys):
        for bad in ("-1", "nan"):
            argv = ["cache", "gc", "--max-mb", bad]
            with pytest.raises(SystemExit):
                cli_main(argv + ["--cache-dir", str(tmp_path)])
            assert "finite value >= 0" in capsys.readouterr().err

    def test_cache_clear_subcommand(self, tmp_path, capsys):
        cache_dir = tmp_path / "c"
        _seed_cache(cache_dir)
        capsys.readouterr()
        assert cli_main(["cache", "clear", "--cache-dir", str(cache_dir)]) == 0
        assert "cleared 1" in capsys.readouterr().out

    def test_ablate_command_bit_identical_across_jobs(self, tmp_path, capsys):
        base = ["ablate", "nvr-depth", "--values", "1,4"]
        base += ["--workloads", "ds", "--scale", str(SCALE)]
        assert cli_main(base + ["--jobs", "1", "--cache-dir", str(tmp_path / "a")]) == 0
        serial = capsys.readouterr().out
        assert cli_main(base + ["--jobs", "2", "--cache-dir", str(tmp_path / "b")]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel
        assert "depth_tiles" in serial and "geomean speedup" in serial
        # Warm rerun from the first cache is identical too.
        assert cli_main(base + ["--jobs", "1", "--cache-dir", str(tmp_path / "a")]) == 0
        assert capsys.readouterr().out == serial

    def test_ablate_json_record(self, tmp_path, capsys):
        out_json = tmp_path / "abl.json"
        argv = ["ablate", "nsb-size", "--values", "4,16", "--workloads", "st"]
        argv += ["--scale", str(SCALE), "--no-cache", "--json", str(out_json)]
        rc = cli_main(argv)
        capsys.readouterr()
        assert rc == 0
        record = json.loads(out_json.read_text())
        assert record["axis"] == "nsb_kib"
        assert record["values"] == [4, 16]
        assert len(record["cycles"]["st"]) == 2
