"""The ``repro check`` static-analysis subsystem.

Each rule is exercised against a fixture corpus: a *bad* snippet that
must produce the rule's finding and a *good* twin that must not. The
snippets are written under a ``src/repro/...`` mirror in tmp_path so the
logical-path scoping behaves exactly as it does over the real tree.
The suite ends with the self-hosting gate: ``repro check src`` over this
repository must exit 0 — the analyzer landed with a clean codebase and
CI keeps it that way.
"""

import json
from pathlib import Path

import pytest

from repro.__main__ import main as cli_main
from repro.check import CHECK_RULES, PARSE_ERROR_CODE, CheckConfig, run_check
from repro.check.base import logical_path
from repro.errors import ConfigError

REPO_ROOT = Path(__file__).resolve().parent.parent


def write_module(tmp_path: Path, rel: str, text: str) -> Path:
    """Write a fixture snippet at its logical location under tmp_path."""
    path = tmp_path / "src" / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text, encoding="utf-8")
    return path


def codes_for(tmp_path: Path, rel: str, text: str) -> list:
    path = write_module(tmp_path, rel, text)
    report = run_check([path])
    return [f.code for f in report.findings]


class TestRegistry:
    def test_initial_rule_pack_is_registered(self):
        codes = sorted(CHECK_RULES.names())
        assert len(codes) >= 6
        assert codes[:6] == [
            "RPR001",
            "RPR002",
            "RPR003",
            "RPR004",
            "RPR005",
            "RPR006",
        ]

    def test_rules_carry_catalog_metadata(self):
        for code in CHECK_RULES.names():
            rule = CHECK_RULES.get(code)
            assert rule.code == code
            assert rule.name and rule.description and rule.rationale
            assert rule.severity in ("warning", "error")

    def test_unknown_rule_selection_is_config_error(self, tmp_path):
        with pytest.raises(ConfigError):
            run_check([tmp_path], rule_codes=["RPR999"])


class TestLogicalPath:
    def test_strips_any_prefix_down_to_package_root(self):
        assert (
            logical_path(Path("/x/y/src/repro/runner/queue.py"))
            == "repro/runner/queue.py"
        )
        assert logical_path(Path("src/repro/client.py")) == "repro/client.py"

    def test_path_outside_package_falls_back_to_filename(self):
        assert logical_path(Path("/etc/passwd.py")) == "passwd.py"


class TestRPR001AtomicWrites:
    BAD = (
        "import json\n"
        "def save(path, doc):\n"
        "    with open(path, 'w') as handle:\n"
        "        json.dump(doc, handle)\n"
    )
    GOOD = (
        "from .cache import atomic_write_json\n"
        "def save(path, doc):\n"
        "    atomic_write_json(path, doc)\n"
    )

    def test_raw_json_dump_in_queue_module_is_flagged(self, tmp_path):
        codes = codes_for(tmp_path, "repro/runner/queue.py", self.BAD)
        assert "RPR001" in codes

    def test_atomic_write_helper_is_clean(self, tmp_path):
        codes = codes_for(tmp_path, "repro/runner/queue.py", self.GOOD)
        assert "RPR001" not in codes

    def test_atomic_write_json_itself_is_exempt(self, tmp_path):
        body = (
            "import json, os\n"
            "def atomic_write_json(path, doc):\n"
            "    fd, tmp = 1, 'x'\n"
            "    with os.fdopen(fd, 'w') as handle:\n"
            "        json.dump(doc, handle, sort_keys=True, allow_nan=False)\n"
            "    os.replace(tmp, path)\n"
        )
        codes = codes_for(tmp_path, "repro/runner/cache.py", body)
        assert "RPR001" not in codes

    def test_write_text_of_json_dumps_is_flagged(self, tmp_path):
        body = (
            "import json\n"
            "def save(path, doc):\n"
            "    path.write_text(json.dumps(doc, sort_keys=True, "
            "allow_nan=False))\n"
        )
        codes = codes_for(tmp_path, "repro/runner/fleet.py", body)
        assert "RPR001" in codes

    def test_out_of_scope_module_is_not_flagged(self, tmp_path):
        codes = codes_for(tmp_path, "repro/analysis/export.py", self.BAD)
        assert "RPR001" not in codes


class TestRPR002CanonicalJson:
    def test_unsorted_nan_accepting_dumps_is_flagged(self, tmp_path):
        body = "import json\ndef enc(b):\n    return json.dumps(b)\n"
        codes = codes_for(tmp_path, "repro/client.py", body)
        assert codes == ["RPR002"]

    def test_canonical_dumps_is_clean(self, tmp_path):
        body = (
            "import json\n"
            "def enc(b):\n"
            "    return json.dumps(b, sort_keys=True, allow_nan=False)\n"
        )
        codes = codes_for(tmp_path, "repro/client.py", body)
        assert codes == []

    def test_message_names_only_the_missing_flags(self, tmp_path):
        body = "import json\ndef enc(b):\n    return json.dumps(b, sort_keys=True)\n"
        path = write_module(tmp_path, "repro/client.py", body)
        report = run_check([path])
        assert len(report.findings) == 1
        assert "allow_nan=False" in report.findings[0].message
        assert "sort_keys" not in report.findings[0].message


class TestRPR003Determinism:
    def test_time_import_in_spec_is_flagged(self, tmp_path):
        body = "import time\nNOW = time.time\n"
        codes = codes_for(tmp_path, "repro/spec/serde.py", body)
        assert "RPR003" in codes

    def test_uuid_from_import_is_flagged(self, tmp_path):
        body = "from uuid import uuid4\n"
        codes = codes_for(tmp_path, "repro/spec/system.py", body)
        assert "RPR003" in codes

    def test_set_iteration_in_hashed_path_is_flagged(self, tmp_path):
        body = "def keys(d):\n    return [k for k in set(d)]\n"
        codes = codes_for(tmp_path, "repro/runner/plan.py", body)
        assert "RPR003" in codes

    def test_sorted_set_iteration_is_clean(self, tmp_path):
        body = "def keys(d):\n    return [k for k in sorted(set(d))]\n"
        codes = codes_for(tmp_path, "repro/runner/plan.py", body)
        assert "RPR003" not in codes

    def test_time_import_outside_hashed_paths_is_fine(self, tmp_path):
        body = "import time\nNOW = time.time\n"
        codes = codes_for(tmp_path, "repro/runner/worker.py", body)
        assert "RPR003" not in codes


class TestRPR004AsyncBlocking:
    def test_time_sleep_in_server_coroutine_is_flagged(self, tmp_path):
        body = "import time\nasync def handle():\n    time.sleep(1)\n"
        codes = codes_for(tmp_path, "repro/server/http.py", body)
        assert "RPR004" in codes

    def test_sync_open_in_coroutine_is_flagged(self, tmp_path):
        body = (
            "async def handle(path):\n"
            "    with open(path) as handle:\n"
            "        return handle.read()\n"
        )
        codes = codes_for(tmp_path, "repro/server/engine.py", body)
        assert "RPR004" in codes

    def test_asyncio_sleep_is_clean(self, tmp_path):
        body = "import asyncio\nasync def handle():\n    await asyncio.sleep(1)\n"
        codes = codes_for(tmp_path, "repro/server/http.py", body)
        assert "RPR004" not in codes

    def test_nested_sync_def_is_not_the_event_loop(self, tmp_path):
        body = (
            "import time\n"
            "async def handle(loop):\n"
            "    def work():\n"
            "        time.sleep(1)\n"
            "    await loop.run_in_executor(None, work)\n"
        )
        codes = codes_for(tmp_path, "repro/server/http.py", body)
        assert "RPR004" not in codes

    def test_sync_def_in_server_is_fine(self, tmp_path):
        body = "import time\ndef tick():\n    time.sleep(1)\n"
        codes = codes_for(tmp_path, "repro/server/http.py", body)
        assert "RPR004" not in codes


class TestRPR005SilentExcept:
    def test_swallowing_broad_except_is_flagged(self, tmp_path):
        body = (
            "def load(path):\n"
            "    try:\n"
            "        return open(path).read()\n"
            "    except Exception:\n"
            "        pass\n"
        )
        codes = codes_for(tmp_path, "repro/runner/sync.py", body)
        assert "RPR005" in codes

    def test_bare_except_returning_none_is_flagged(self, tmp_path):
        body = (
            "def load(path):\n"
            "    try:\n"
            "        return open(path).read()\n"
            "    except:\n"
            "        return None\n"
        )
        codes = codes_for(tmp_path, "repro/session.py", body)
        assert "RPR005" in codes

    def test_narrow_except_is_clean(self, tmp_path):
        body = (
            "def load(path):\n"
            "    try:\n"
            "        return open(path).read()\n"
            "    except (OSError, ValueError):\n"
            "        return None\n"
        )
        codes = codes_for(tmp_path, "repro/runner/sync.py", body)
        assert "RPR005" not in codes

    def test_broad_except_that_reraises_is_clean(self, tmp_path):
        body = (
            "def load(path):\n"
            "    try:\n"
            "        return open(path).read()\n"
            "    except Exception:\n"
            "        raise\n"
        )
        codes = codes_for(tmp_path, "repro/runner/sync.py", body)
        assert "RPR005" not in codes

    def test_broad_except_that_logs_is_clean(self, tmp_path):
        body = (
            "def load(path, log):\n"
            "    try:\n"
            "        return open(path).read()\n"
            "    except Exception as exc:\n"
            "        log(str(exc))\n"
            "        return None\n"
        )
        codes = codes_for(tmp_path, "repro/runner/sync.py", body)
        assert "RPR005" not in codes


class TestRPR006QueueRenames:
    def test_shutil_move_in_queue_is_flagged(self, tmp_path):
        body = "import shutil\ndef claim(src, dst):\n    shutil.move(src, dst)\n"
        codes = codes_for(tmp_path, "repro/runner/queue.py", body)
        assert "RPR006" in codes

    def test_copyfile_in_queue_is_flagged(self, tmp_path):
        body = (
            "import shutil, os\n"
            "def claim(src, dst):\n"
            "    shutil.copyfile(src, dst)\n"
            "    os.unlink(src)\n"
        )
        codes = codes_for(tmp_path, "repro/runner/queue.py", body)
        assert "RPR006" in codes

    def test_os_replace_is_clean(self, tmp_path):
        body = "import os\ndef claim(src, dst):\n    os.replace(src, dst)\n"
        codes = codes_for(tmp_path, "repro/runner/queue.py", body)
        assert "RPR006" not in codes

    def test_shutil_elsewhere_is_out_of_scope(self, tmp_path):
        body = "import shutil\ndef push(src, dst):\n    shutil.copyfile(src, dst)\n"
        codes = codes_for(tmp_path, "repro/runner/sync.py", body)
        assert "RPR006" not in codes


class TestSuppression:
    BAD_DUMPS = "import json\ndef enc(b):\n    return json.dumps(b)"

    def test_same_line_suppression(self, tmp_path):
        body = (
            "import json\n"
            "def enc(b):\n"
            "    return json.dumps(b)  # repro: ignore[RPR002] wire order\n"
        )
        path = write_module(tmp_path, "repro/client.py", body)
        report = run_check([path])
        assert report.findings == []
        assert report.suppressed == 1

    def test_preceding_line_suppression(self, tmp_path):
        body = (
            "import json\n"
            "def enc(b):\n"
            "    # repro: ignore[RPR002] columns keep wire order\n"
            "    return json.dumps(b)\n"
        )
        path = write_module(tmp_path, "repro/client.py", body)
        report = run_check([path])
        assert report.findings == []
        assert report.suppressed == 1

    def test_suppression_is_per_code(self, tmp_path):
        body = (
            "import json\n"
            "def enc(b):\n"
            "    return json.dumps(b)  # repro: ignore[RPR005]\n"
        )
        path = write_module(tmp_path, "repro/client.py", body)
        report = run_check([path])
        assert [f.code for f in report.findings] == ["RPR002"]
        assert report.suppressed == 0

    def test_multiple_codes_in_one_comment(self, tmp_path):
        body = (
            "import json\n"
            "def enc(b):\n"
            "    return json.dumps(b)  # repro: ignore[RPR002, RPR005]\n"
        )
        path = write_module(tmp_path, "repro/client.py", body)
        report = run_check([path])
        assert report.findings == []

    def test_config_wide_ignore(self, tmp_path):
        path = write_module(tmp_path, "repro/client.py", self.BAD_DUMPS)
        config = CheckConfig(ignore_codes=frozenset({"RPR002"}))
        report = run_check([path], config=config)
        assert report.findings == []
        assert report.suppressed == 1

    def test_config_exclude_pattern(self, tmp_path):
        path = write_module(tmp_path, "repro/client.py", self.BAD_DUMPS)
        config = CheckConfig(exclude=("repro/client.py",))
        report = run_check([path], config=config)
        assert report.files_checked == 0
        assert report.findings == []


class TestEngine:
    def test_unparseable_file_is_reported_not_crashed(self, tmp_path):
        path = write_module(tmp_path, "repro/client.py", "def broken(:\n")
        report = run_check([path])
        assert [f.code for f in report.findings] == [PARSE_ERROR_CODE]
        assert report.exit_code == 1

    def test_missing_path_is_config_error(self, tmp_path):
        with pytest.raises(ConfigError):
            run_check([tmp_path / "nope"])

    def test_rule_selection_restricts_the_pass(self, tmp_path):
        body = (
            "import json, shutil\n"
            "def move(src, dst):\n"
            "    shutil.move(src, dst)\n"
            "def enc(b):\n"
            "    return json.dumps(b)\n"
        )
        path = write_module(tmp_path, "repro/runner/queue.py", body)
        report = run_check([path], rule_codes=["RPR006"])
        assert [f.code for f in report.findings] == ["RPR006"]

    def test_findings_are_sorted_and_counted(self, tmp_path):
        write_module(
            tmp_path,
            "repro/runner/queue.py",
            "import shutil\ndef c(s, d):\n    shutil.move(s, d)\n",
        )
        write_module(
            tmp_path,
            "repro/client.py",
            "import json\ndef enc(b):\n    return json.dumps(b)\n",
        )
        report = run_check([tmp_path])
        assert report.files_checked == 2
        paths = [f.path for f in report.findings]
        assert paths == sorted(paths)


class TestCli:
    def test_json_output_shape(self, tmp_path, capsys):
        write_module(
            tmp_path,
            "repro/client.py",
            "import json\ndef enc(b):\n    return json.dumps(b)\n",
        )
        rc = cli_main(["check", "--json", str(tmp_path)])
        document = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert set(document) == {
            "files_checked",
            "findings",
            "rules",
            "suppressed",
        }
        (finding,) = document["findings"]
        assert set(finding) == {
            "code",
            "message",
            "path",
            "line",
            "col",
            "severity",
        }
        assert finding["code"] == "RPR002"
        assert finding["line"] == 3

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        write_module(tmp_path, "repro/client.py", "X = 1\n")
        rc = cli_main(["check", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 finding(s)" in out

    def test_human_output_is_path_line_col_code(self, tmp_path, capsys):
        path = write_module(
            tmp_path,
            "repro/client.py",
            "import json\ndef enc(b):\n    return json.dumps(b)\n",
        )
        rc = cli_main(["check", str(path)])
        out = capsys.readouterr().out
        assert rc == 1
        assert f"{path}:3:" in out
        assert "RPR002" in out

    def test_rule_flag_selects_one_rule(self, tmp_path, capsys):
        write_module(
            tmp_path,
            "repro/client.py",
            "import json\ndef enc(b):\n    return json.dumps(b)\n",
        )
        rc = cli_main(["check", "--rule", "RPR006", str(tmp_path)])
        assert rc == 0

    def test_unknown_rule_is_a_clean_cli_error(self, tmp_path, capsys):
        rc = cli_main(["check", "--rule", "RPR999", str(tmp_path)])
        assert rc == 2
        assert "RPR999" in capsys.readouterr().err

    def test_list_renders_the_catalog(self, capsys):
        rc = cli_main(["check", "--list"])
        out = capsys.readouterr().out
        assert rc == 0
        for code in CHECK_RULES.names():
            assert code in out


class TestSelfHosted:
    def test_repro_check_src_is_clean(self, capsys):
        """The hard gate: the analyzer passes over its own repository."""
        rc = cli_main(["check", str(REPO_ROOT / "src")])
        out = capsys.readouterr().out
        assert rc == 0, out

    def test_pyproject_wires_mypy_and_check(self):
        tomllib = pytest.importorskip("tomllib")
        with open(REPO_ROOT / "pyproject.toml", "rb") as handle:
            document = tomllib.load(handle)
        assert "mypy" in document["tool"]
        overrides = document["tool"]["mypy"]["overrides"]
        strict = [o for o in overrides if "repro.spec" in o.get("module", ())]
        assert strict and strict[0]["disallow_untyped_defs"] is True
        assert "repro-check" in document["tool"]

    def test_mypy_strict_core_passes(self):
        """Clean strict pass on the serialization core (skips if no mypy)."""
        mypy_api = pytest.importorskip("mypy.api")
        stdout, stderr, rc = mypy_api.run(
            [
                "--config-file",
                str(REPO_ROOT / "pyproject.toml"),
                "-p",
                "repro",
            ]
        )
        assert rc == 0, stdout + stderr
