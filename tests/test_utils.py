"""Tests for repro.utils helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.utils import (
    align_down,
    align_up,
    ceil_div,
    geometric_mean,
    human_bytes,
    is_pow2,
    log2_int,
    make_rng,
    require_pow2,
)


class TestPow2:
    def test_is_pow2_accepts_powers(self):
        for k in range(20):
            assert is_pow2(1 << k)

    def test_is_pow2_rejects_non_powers(self):
        for v in (0, -1, 3, 6, 12, 100):
            assert not is_pow2(v)

    def test_require_pow2_passthrough(self):
        assert require_pow2(64, "x") == 64

    def test_require_pow2_raises(self):
        with pytest.raises(ConfigError):
            require_pow2(48, "x")

    def test_log2_int(self):
        assert log2_int(1) == 0
        assert log2_int(1024) == 10

    def test_log2_int_rejects_non_pow2(self):
        with pytest.raises(ConfigError):
            log2_int(12)


class TestAlignment:
    def test_align_down(self):
        assert align_down(0x1234, 64) == 0x1200

    def test_align_up(self):
        assert align_up(0x1201, 64) == 0x1240

    def test_align_up_already_aligned(self):
        assert align_up(0x1200, 64) == 0x1200

    @given(st.integers(min_value=0, max_value=2**48), st.sampled_from([16, 64, 256]))
    def test_align_invariants(self, addr, granule):
        down = align_down(addr, granule)
        up = align_up(addr, granule)
        assert down <= addr <= up
        assert down % granule == 0
        assert up % granule == 0
        assert up - down in (0, granule)


class TestCeilDiv:
    def test_exact(self):
        assert ceil_div(8, 4) == 2

    def test_rounds_up(self):
        assert ceil_div(9, 4) == 3

    def test_zero_numerator(self):
        assert ceil_div(0, 4) == 0

    def test_bad_divisor(self):
        with pytest.raises(ConfigError):
            ceil_div(4, 0)


class TestRng:
    def test_deterministic(self):
        a = make_rng(7).integers(0, 1000, size=16)
        b = make_rng(7).integers(0, 1000, size=16)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = make_rng(1).integers(0, 10**9)
        b = make_rng(2).integers(0, 10**9)
        assert a != b


class TestHumanBytes:
    def test_bytes(self):
        assert human_bytes(512) == "512 B"

    def test_kib(self):
        assert human_bytes(1536) == "1.5 KiB"

    def test_mib(self):
        assert human_bytes(4 * 1024 * 1024) == "4.0 MiB"


class TestGeometricMean:
    def test_simple(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_single(self):
        assert geometric_mean([3.0]) == pytest.approx(3.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_nonpositive_raises(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    @given(st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=1, max_size=10))
    def test_bounded_by_min_max(self, values):
        g = geometric_mean(values)
        assert min(values) - 1e-9 <= g <= max(values) + 1e-9
