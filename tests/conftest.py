"""Shared test configuration.

Point the default result cache (`repro.session.resolve_cache_dir`, used
by `default_session()` and therefore by bare `run_workload` /
`compare_mechanisms` calls and CLI invocations without `--cache-dir`) at
a per-run scratch directory. Tests still exercise real caching — points
memoise across a pytest run — but never read a stale `.repro-cache/`
from a previous run or litter the repository root. The env var is
inherited by `repro worker` subprocesses, so the distributed paths stay
isolated too.
"""

import os

import pytest


@pytest.fixture(autouse=True, scope="session")
def _isolated_default_cache(tmp_path_factory):
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("repro-cache"))
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous
