"""Concurrent cache access: racing writers/readers of the same point.

The server hands every tenant cache to multiple drain threads, and any
number of workers/orchestrators/daemons may share one cache directory —
so the lock-free put/get protocol (atomic temp-file + rename, salt and
spec verified on read) must hold up under deliberate races:

* threads hammering put/get on one spec never observe a torn payload;
* two Sessions sweeping the same plan concurrently both finish with
  the right results and exactly one entry per point;
* two separate *processes* executing the same point concurrently leave
  one valid entry and no temp-file litter.
"""

import json
import os
import subprocess
import sys
import threading
from pathlib import Path

from repro.runner import ResultCache, RunSpec, expand
from repro.session import Session

SCALE = 0.05


def tmp_litter(root: Path) -> list:
    return list(root.rglob("*.tmp"))


class TestThreadRaces:
    def test_put_get_race_never_tears(self, tmp_path):
        # Writers rewrite the same entry while readers poll it; every
        # read must be either a miss or one of the complete payloads.
        cache = ResultCache(tmp_path)
        spec = RunSpec("st", scale=SCALE)
        payloads = [
            {"kind": "trace", "trace": {"writer": w, "fill": "x" * 4096}}
            for w in range(2)
        ]
        stop = threading.Event()
        seen, bad = [], []

        def writer(payload):
            while not stop.is_set():
                cache.put(spec, payload)

        def reader():
            while not stop.is_set():
                payload = cache.get(spec)
                if payload is None:
                    continue
                if payload not in payloads:
                    bad.append(payload)
                else:
                    seen.append(payload["trace"]["writer"])

        threads = [threading.Thread(target=writer, args=(p,)) for p in payloads]
        threads += [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        deadline = threading.Event()
        deadline.wait(1.0)
        stop.set()
        for thread in threads:
            thread.join(10)
        assert not bad
        assert len(seen) > 0
        assert cache.get(spec) in payloads
        assert tmp_litter(tmp_path) == []

    def test_two_sessions_sweep_the_same_plan_concurrently(self, tmp_path):
        specs = expand("st", ["inorder", "nvr"], scales=SCALE)
        outcomes = {}

        def sweep(name):
            with Session(cache_dir=tmp_path) as session:
                rs = session.sweep(specs)
            outcomes[name] = rs.render("json")

        threads = [
            threading.Thread(target=sweep, args=(name,)) for name in ("a", "b")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(120)
        assert outcomes["a"] == outcomes["b"]
        cache = ResultCache(tmp_path)
        assert len(cache.entries()) == len(specs)
        for spec in specs:
            assert cache.get(spec) is not None
        assert tmp_litter(tmp_path) == []


class TestProcessRaces:
    def test_two_processes_execute_the_same_point(self, tmp_path):
        # Two CLI processes race the same uncached point into one shared
        # cache directory: both must succeed, converging on exactly one
        # verified entry for the spec.
        cache_dir = tmp_path / "cache"
        command = [
            sys.executable,
            "-m",
            "repro",
            "run",
            "st",
            "--mechanism",
            "inorder",
            "--scale",
            str(SCALE),
            "--cache-dir",
            str(cache_dir),
        ]
        env = dict(os.environ)
        procs = [
            subprocess.Popen(
                command,
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                env=env,
                text=True,
            )
            for _ in range(2)
        ]
        outputs = [proc.communicate(timeout=120)[0] for proc in procs]
        for proc, output in zip(procs, outputs):
            assert proc.returncode == 0, output

        cache = ResultCache(cache_dir)
        # `repro run` prints the base/stall split, so its spec pins
        # with_base=True.
        spec = RunSpec("st", mechanism="inorder", scale=SCALE, with_base=True)
        entries = cache.entries()
        assert len(entries) == 1
        entry = json.loads(entries[0].read_text())
        assert entry["salt"] == cache.salt
        assert entry["spec"] == spec.to_dict()
        assert cache.get(spec) is not None
        assert tmp_litter(cache_dir) == []
