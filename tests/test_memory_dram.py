"""Tests for the DRAM channel model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.sim.memory.dram import DRAM, DRAMConfig


class TestDRAMConfig:
    def test_defaults_valid(self):
        DRAMConfig()

    def test_zero_latency_rejected(self):
        with pytest.raises(ConfigError):
            DRAMConfig(latency=0)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ConfigError):
            DRAMConfig(bytes_per_cycle=0)

    def test_negative_prefetch_penalty_rejected(self):
        with pytest.raises(ConfigError):
            DRAMConfig(prefetch_penalty=-1)


class TestDRAMTiming:
    def test_single_access_latency(self):
        dram = DRAM(DRAMConfig(latency=100, bytes_per_cycle=16))
        done = dram.access(0, 64)
        assert done == 100 + 4  # latency + 64/16 service

    def test_latency_overlaps_service_queues(self):
        """Two simultaneous requests overlap latency, serialise on the bus."""
        dram = DRAM(DRAMConfig(latency=100, bytes_per_cycle=16))
        first = dram.access(0, 64)
        second = dram.access(0, 64)
        assert first == 104
        assert second == 108  # waited 4 cycles for bus, same latency

    def test_idle_bus_no_queueing(self):
        dram = DRAM(DRAMConfig(latency=100, bytes_per_cycle=16))
        dram.access(0, 64)
        done = dram.access(1000, 64)
        assert done == 1104

    def test_prefetch_penalty_applied(self):
        dram = DRAM(DRAMConfig(latency=100, bytes_per_cycle=16, prefetch_penalty=8))
        done = dram.access(0, 64, is_prefetch=True)
        assert done == 8 + 100 + 4

    def test_busy_accounting(self):
        dram = DRAM(DRAMConfig(latency=100, bytes_per_cycle=16))
        dram.access(0, 64)
        dram.access(0, 64)
        assert dram.busy_cycles == 8
        assert dram.transfers == 2
        assert dram.bytes_transferred == 128

    def test_utilisation_bounded(self):
        dram = DRAM(DRAMConfig())
        dram.access(0, 64)
        assert 0.0 <= dram.utilisation(1000) <= 1.0
        assert dram.utilisation(0) == 0.0


class TestDRAMProperties:
    @given(st.lists(st.integers(min_value=0, max_value=5000), min_size=1, max_size=100))
    def test_completion_monotone_for_sorted_issue(self, times):
        """Completions of in-order issues never go backwards."""
        dram = DRAM(DRAMConfig(latency=50, bytes_per_cycle=8))
        last = -1
        for t in sorted(times):
            done = dram.access(t, 64)
            assert done > t
            assert done >= last
            last = done

    @given(st.integers(min_value=1, max_value=4096))
    def test_service_cycles_positive_and_proportional(self, n_bytes):
        dram = DRAM(DRAMConfig(latency=50, bytes_per_cycle=16))
        s = dram.service_cycles(n_bytes)
        assert s >= 1
        assert s >= n_bytes // 16
