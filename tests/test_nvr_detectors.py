"""Unit tests for NVR's detector components (SD, LBD, SCD, VMIG)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.loop_bound_detector import LoopBoundDetector
from repro.core.sparse_chain_detector import SparseChainDetector
from repro.core.stride_detector import StrideDetector
from repro.core.vmig import VMIG
from repro.errors import ConfigError


class TestStrideDetector:
    def test_learns_constant_stride(self):
        sd = StrideDetector()
        for i in range(4):
            sd.observe(1, 0x1000 + i * 64)
        assert sd.confident(1)

    def test_not_confident_on_random(self):
        sd = StrideDetector()
        rng = np.random.default_rng(0)
        for _ in range(20):
            sd.observe(1, int(rng.integers(0, 1 << 20)))
        assert not sd.confident(1)

    def test_length_aware_contiguous_stream(self):
        """Variable-length tiles of a contiguous stream keep confidence."""
        sd = StrideDetector()
        addr = 0x1000
        for n_elems in (16, 16, 2, 16, 16, 5, 16):
            sd.observe(1, addr, n_elems=n_elems, elem_bytes=4)
            addr += n_elems * 4
        assert sd.confident(1)

    def test_predict_window_advances_frontier(self):
        sd = StrideDetector()
        for i in range(4):
            sd.observe(1, 0x1000 + i * 64)
        w1 = sd.predict_window(1, 128)
        w2 = sd.predict_window(1, 128)
        assert w1 is not None and w2 is not None
        assert w2[0] == w1[1]  # no overlap, no gap

    def test_predict_without_confidence_is_none(self):
        sd = StrideDetector()
        sd.observe(1, 0x1000)
        assert sd.predict_window(1, 64) is None

    def test_capacity_eviction_lru(self):
        sd = StrideDetector(n_entries=2)
        sd.observe(1, 0)
        sd.observe(2, 0)
        sd.observe(3, 0)  # evicts stream 1
        assert sd.occupancy == 2

    def test_bad_config(self):
        with pytest.raises(ConfigError):
            StrideDetector(n_entries=0)
        with pytest.raises(ConfigError):
            StrideDetector(confirm=9)

    @settings(max_examples=30)
    @given(st.integers(min_value=1, max_value=4096))
    def test_any_constant_stride_learned(self, stride):
        sd = StrideDetector()
        for i in range(5):
            sd.observe(7, i * stride)
        assert sd.confident(7)


class TestLoopBoundDetector:
    def test_learns_static_bound(self):
        lbd = LoopBoundDetector()
        for i in range(5):
            lbd.observe_branch(pc=0x100, counter=i, bound=10, level=1)
        assert lbd.known_bound(0x100) == 10

    def test_unstable_bound_not_known(self):
        lbd = LoopBoundDetector()
        lbd.observe_branch(0x100, 0, 10, 1)
        lbd.observe_branch(0x100, 1, 99, 1)
        assert lbd.known_bound(0x100) is None

    def test_sparse_window_tracks_row_length_ewma(self):
        lbd = LoopBoundDetector(ewma_alpha=0.5)
        lbd.observe_sparse_window(0, 0, 10)
        lbd.observe_sparse_window(1, 10, 30)
        assert lbd.mean_row_length == pytest.approx(15.0)

    def test_predict_limit_exact_for_current_row(self):
        lbd = LoopBoundDetector(vector_width=16, fuzz_vectors=0)
        lbd.observe_sparse_window(0, 0, 40)
        limit = lbd.predict_stream_limit(j_now=10, rows_ahead=0)
        assert limit >= 40  # never clips the known row
        assert limit % 16 == 0  # vector-rounded

    def test_fuzz_adds_vectors(self):
        plain = LoopBoundDetector(vector_width=16, fuzz_vectors=0)
        fuzzy = LoopBoundDetector(vector_width=16, fuzz_vectors=2)
        for lbd in (plain, fuzzy):
            lbd.observe_sparse_window(0, 0, 40)
        assert fuzzy.predict_stream_limit(0, 0) == plain.predict_stream_limit(0, 0) + 32

    def test_rows_ahead_extends_by_mean(self):
        lbd = LoopBoundDetector(vector_width=16, fuzz_vectors=0)
        lbd.observe_sparse_window(0, 0, 32)
        near = lbd.predict_stream_limit(0, rows_ahead=0)
        far = lbd.predict_stream_limit(0, rows_ahead=4)
        assert far >= near + 4 * 32 - 16

    def test_sst_capacity(self):
        lbd = LoopBoundDetector(n_entries=2)
        for pc in (1, 2, 3):
            lbd.observe_branch(pc, 0, 10, 0)
        assert lbd.occupancy == 2

    def test_bad_config(self):
        with pytest.raises(ConfigError):
            LoopBoundDetector(n_entries=0)
        with pytest.raises(ConfigError):
            LoopBoundDetector(ewma_alpha=0.0)
        with pytest.raises(ConfigError):
            LoopBoundDetector(fuzz_vectors=-1)


class TestSparseChainDetector:
    def test_affine_fit_locks(self):
        scd = SparseChainDetector()
        base, shift = 0x4000_0000, 7  # 128-byte rows
        for idx in (3, 9, 14, 20):
            scd.record_resolution(3, idx, base + (idx << shift))
        assert scd.formula_address(3, 50) == base + (50 << shift)

    def test_hashed_pairs_never_validate(self):
        scd = SparseChainDetector()
        rng = np.random.default_rng(1)
        perm = rng.permutation(4096)
        for idx in rng.integers(0, 4096, size=50):
            scd.record_resolution(3, int(idx), 0x4000_0000 + int(perm[idx]) * 128)
        assert scd.formula_address(3, 7) is None

    def test_delta_extrapolation_on_regular_indices(self):
        scd = SparseChainDetector(delta_confidence=3)
        base = 0x1000
        for k in range(10):
            idx = 4 * k
            scd.record_resolution(3, idx, base + (idx << 6))
        predicted = scd.predict_indices(3, 4)
        assert predicted == [40, 44, 48, 52]

    def test_no_extrapolation_on_random_indices(self):
        scd = SparseChainDetector()
        rng = np.random.default_rng(2)
        for idx in rng.integers(0, 10_000, size=40):
            scd.record_resolution(3, int(idx), 0x1000 + (int(idx) << 6))
        assert scd.predict_indices(3, 4) is None

    def test_ipt_capacity(self):
        scd = SparseChainDetector(n_entries=2)
        for sid in (1, 2, 3):
            scd.record_resolution(sid, 1, 64)
        assert scd.occupancy == 2

    def test_entry_state_view(self):
        scd = SparseChainDetector()
        scd.record_resolution(3, 5, 5 << 6)
        entry = scd.entry_state(3)
        assert entry is not None
        assert entry.lpi == 5


class TestVMIG:
    def test_dedups_shared_lines(self):
        vmig = VMIG(vector_width=4, line_bytes=64)
        batches = vmig.bundle([0, 16, 32, 48], seg_bytes=16)
        assert len(batches) == 1
        assert list(batches[0]) == [0]

    def test_splits_into_vector_width_batches(self):
        vmig = VMIG(vector_width=4, line_bytes=64)
        addrs = [i * 64 for i in range(10)]
        batches = vmig.bundle(addrs, seg_bytes=64)
        assert [len(b) for b in batches] == [4, 4, 2]

    def test_segments_spanning_lines(self):
        vmig = VMIG(vector_width=16, line_bytes=64)
        batches = vmig.bundle([32], seg_bytes=128)
        assert list(batches[0]) == [0, 64, 128]

    def test_compression_ratio(self):
        vmig = VMIG(vector_width=16, line_bytes=64)
        vmig.bundle([0, 8, 16, 24], seg_bytes=8)  # 4 elements -> 1 line
        assert vmig.compression_ratio == pytest.approx(4.0)

    def test_empty_input(self):
        vmig = VMIG()
        assert vmig.bundle([], seg_bytes=64) == []

    def test_bad_config(self):
        with pytest.raises(ConfigError):
            VMIG(vector_width=0)
        with pytest.raises(ConfigError):
            VMIG(line_bytes=48)
        with pytest.raises(ConfigError):
            VMIG().bundle([0], seg_bytes=0)

    @settings(max_examples=30)
    @given(
        st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=64)
    )
    def test_all_lines_covered_once(self, addrs):
        vmig = VMIG(vector_width=8, line_bytes=64)
        batches = vmig.bundle(addrs, seg_bytes=32)
        emitted = [int(a) for b in batches for a in b]
        assert len(emitted) == len(set(emitted))  # dedup
        needed = set()
        for a in addrs:
            needed.add(a // 64 * 64)
            needed.add((a + 31) // 64 * 64)
        assert set(emitted) == needed
