"""The declarative spec layer: serde round-trips, registries, goldens.

Three acceptance properties:

* every config object and every registered mechanism/engine/workload
  round-trips ``from_dict(to_dict(x)) == x`` through pure JSON;
* incompatible combinations (nvr_config on a non-NVR mechanism, nsb
  toggle against a memory override that already has an NSB) raise
  ``ConfigError`` instead of being silently resolved;
* spec content keys are *stable across interpreter runs* — the golden
  hashes in ``golden_spec_keys.json`` pin the serialisation format, so
  an accidental change to it (which would orphan every user's result
  cache) fails CI. Intentional format changes must regenerate the file
  (``python tests/test_spec.py regen``) and say so in the PR.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.core import NVRConfig
from repro.errors import ConfigError, WorkloadError
from repro.prefetch import NullPrefetcher
from repro.registry import MECHANISM_ORDER, MECHANISMS, MechanismDef, Registry
from repro.runner import MemorySpec, RunSpec
from repro.sim.memory.hierarchy import CPUTrafficConfig, MemoryConfig
from repro.sim.npu.executor import ENGINES, ExecutorConfig
from repro.session import Grid
from repro.spec import SystemSpec, stable_hash
from repro.workloads import WORKLOAD_ORDER, build_workload
from repro.workloads.registry import WORKLOAD_BUILDERS, register_workload

GOLDEN_PATH = Path(__file__).parent / "golden_spec_keys.json"


def golden_specs() -> dict[str, RunSpec]:
    """The pinned spec corpus: one representative per serialisation path."""
    return {
        "default": RunSpec("ds"),
        "scalar-axes": RunSpec(
            "gcn",
            mechanism="inorder",
            dtype="int8",
            nsb=True,
            scale=0.25,
            seed=7,
            with_base=True,
        ),
        "workload-args": RunSpec(
            "ds",
            workload_args=(("topk_ratio", 4), ("drift", 1.0)),
        ),
        "trace": RunSpec("st", kind="trace", scale=0.1),
        "memory-shorthand": RunSpec("ds", memory=MemorySpec(l2_kib=128, nsb_kib=8)),
        "memory-full": RunSpec(
            "ds", memory=MemoryConfig().with_cpu_traffic(
                CPUTrafficConfig(lines_per_kcycle=10)
            ),
        ),
        "nvr-tuned": RunSpec(
            "gat",
            mechanism="nvr",
            nvr=NVRConfig(depth_tiles=4, vector_width=8, approximate=False),
        ),
        "executor-tuned": RunSpec(
            "scn", executor=ExecutorConfig(issue_width=4, ooo_window=16)
        ),
        # The engine axis: "vectorized" must serialise (a distinct cache
        # key — the equivalence suite relies on both engines actually
        # running), while "reference" folds to the default and leaves
        # every pre-engine key untouched.
        "engine-vectorized": RunSpec("ds", engine="vectorized"),
        "engine-batched": RunSpec("ds", engine="batched"),
        "kitchen-sink": RunSpec(
            "h2o",
            mechanism="nvr",
            dtype="int32",
            scale=0.5,
            seed=3,
            with_base=True,
            memory=MemorySpec(l2_kib=512, nsb_kib=32, cpu_traffic=True),
            nvr=NVRConfig(depth_tiles=16),
            executor=ExecutorConfig(issue_width=8),
            workload_args=(("heavy_ratio", 0.2),),
        ),
    }


def golden_grids() -> dict[str, Grid]:
    """The pinned Grid corpus: expansion *order* and content, hashed.

    A drifted hash here means either the RunSpec serialisation format or
    Grid's deterministic expansion order changed — both orphan caches /
    break plan reproducibility and must be called out in the PR.
    """
    return {
        "grid:canonical-axes": Grid(
            workload=["ds", "gcn"],
            mechanism=["inorder", "nvr"],
            dtype=["int8", "fp16"],
            nsb=[False, True],
            scale=0.25,
            seed=[0, 1],
            with_base=True,
        ),
        "grid:derived-axes": Grid(
            workload="ds",
            mechanism="nvr",
            scale=0.3,
            nvr_depth=[2, 8],
            nvr_width=[8, 16],
            nsb_kib=[4, 16],
            l2_kib=[128, 256],
            issue_width=[1, 4],
        ),
        "grid:workload-args": Grid(
            workload="ds",
            mechanism="stream",
            scale=0.2,
            topk_ratio=[2, 4],
            drift=1.0,
        ),
        "grid:trace": Grid(workload=list(WORKLOAD_ORDER), kind="trace", scale=0.1),
        "grid:engines": Grid(
            workload="ds",
            mechanism=["inorder", "nvr"],
            scale=0.2,
            engine=["reference", "vectorized"],
        ),
        # Additive: the batched kernels get their own pinned grid so the
        # pre-batched hashes above never move.
        "grid:engines-batched": Grid(
            workload="ds",
            mechanism=["inorder", "nvr"],
            scale=0.2,
            engine=["reference", "vectorized", "batched"],
        ),
    }


def _grid_hash(grid: Grid) -> str:
    """Order-sensitive content hash of a grid's expansion."""
    keys = "\n".join(spec.key() for spec in grid.specs())
    return hashlib.sha256(keys.encode()).hexdigest()


def _current_goldens() -> dict[str, str]:
    current = {
        name: hashlib.sha256(spec.key().encode()).hexdigest()
        for name, spec in golden_specs().items()
    }
    current.update({name: _grid_hash(grid) for name, grid in golden_grids().items()})
    return current


class TestConfigRoundTrips:
    @pytest.mark.parametrize(
        "config",
        [
            MemoryConfig(),
            MemoryConfig().with_nsb(True),
            MemoryConfig().with_cpu_traffic(),
            MemorySpec(l2_kib=1024, nsb_kib=4).build(),
        ],
    )
    def test_memory_config(self, config):
        clone = MemoryConfig.from_dict(json.loads(json.dumps(config.to_dict())))
        assert clone == config

    def test_nvr_config(self):
        config = NVRConfig(depth_tiles=4, fuzz_vectors=2, approximate=False)
        clone = NVRConfig.from_dict(json.loads(json.dumps(config.to_dict())))
        assert clone == config

    def test_executor_config(self):
        config = ExecutorConfig(issue_width=4, preload_granule=1024)
        clone = ExecutorConfig.from_dict(json.loads(json.dumps(config.to_dict())))
        assert clone == config

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigError, match="depht_tiles"):
            NVRConfig.from_dict({"depht_tiles": 4})
        with pytest.raises(ConfigError, match="l3"):
            MemoryConfig.from_dict({"l3": {}})

    def test_from_dict_revalidates(self):
        d = ExecutorConfig().to_dict()
        d["issue_width"] = 0
        with pytest.raises(ConfigError):
            ExecutorConfig.from_dict(d)


class TestSystemSpec:
    @pytest.mark.parametrize("mechanism", sorted(MECHANISMS))
    def test_round_trip_every_mechanism(self, mechanism):
        spec = SystemSpec(
            mechanism=mechanism,
            nsb=True,
            memory=None,
            nvr=NVRConfig(depth_tiles=4) if mechanism == "nvr" else None,
            executor=ExecutorConfig(issue_width=4),
        )
        clone = SystemSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone == spec
        assert clone.stable_hash() == spec.stable_hash()

    @pytest.mark.parametrize(
        "mode",
        sorted(
            name
            for name in ENGINES
            if not getattr(ENGINES.get(name), "needs_mode", False)
        ),
    )
    def test_every_engine_reachable_and_spec_able(self, mode):
        mechanism = next(name for name, d in MECHANISMS.items() if d.mode == mode)
        spec = SystemSpec(mechanism=mechanism)
        clone = SystemSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.mechanism_def().mode == mode

    @pytest.mark.parametrize("workload", WORKLOAD_ORDER)
    def test_round_trip_every_workload(self, workload):
        spec = RunSpec(workload, mechanism="nvr", nsb=True, scale=0.3)
        clone = RunSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone == spec
        assert clone.key() == spec.key()

    def test_equal_platforms_are_equal_specs(self):
        # The canonicalisation contract: however a platform is written,
        # the spec (equality, hash, content key) is the same.
        assert SystemSpec(nsb=True) == SystemSpec(memory=MemoryConfig().with_nsb(True))
        assert SystemSpec(nvr=NVRConfig()) == SystemSpec()
        assert SystemSpec(memory=MemoryConfig()) == SystemSpec()
        assert SystemSpec(executor=ExecutorConfig()) == SystemSpec()
        # RunSpec dedupe follows: an all-defaults NVRConfig override hits
        # the same cache entry as a plain nvr run.
        a = RunSpec("ds", mechanism="nvr", nvr=NVRConfig(depth_tiles=8))
        b = RunSpec("ds", mechanism="nvr")
        assert a == b
        assert a.key() == b.key()

    def test_nsb_flag_derived_from_memory(self):
        spec = SystemSpec(memory=MemorySpec(nsb_kib=8).build())
        assert spec.nsb is True
        assert SystemSpec().nsb is False

    def test_shorthand_specs_rejected_at_construction(self):
        with pytest.raises(ConfigError, match="MemorySpec"):
            SystemSpec(memory=MemorySpec(l2_kib=128))

    def test_build_resolves_defaults_and_nsb(self):
        program = build_workload("st", scale=0.05)
        system = SystemSpec(mechanism="nvr", nsb=True).build(program)
        assert system.memory.nsb is not None
        assert system.mode == "inorder"

    def test_system_from_spec_classmethod(self):
        from repro.sim.soc import System

        program = build_workload("st", scale=0.05)
        spec = SystemSpec(mechanism="inorder")
        assert System.from_spec(program, spec).run().total_cycles > 0

    def test_label_is_compact(self):
        spec = SystemSpec(
            mechanism="nvr",
            memory=MemorySpec(l2_kib=128, nsb_kib=8).build(),
            nvr=NVRConfig(depth_tiles=4),
        )
        assert spec.label() == "nvr/nsb l2=128K nsb=8K nvr(d4,w16)"


class TestIncompatibleCombinations:
    """Satellite: incompatible configs raise instead of silently resolving."""

    def test_nvr_config_rejected_for_non_nvr_mechanism(self):
        with pytest.raises(ConfigError, match="does not take an nvr config"):
            SystemSpec(mechanism="inorder", nvr=NVRConfig())

    def test_make_system_rejects_nvr_config_on_baseline(self):
        from repro.api import make_system

        program = build_workload("st", scale=0.05)
        with pytest.raises(ConfigError, match="does not take an nvr config"):
            make_system(program, mechanism="stream", nvr_config=NVRConfig())

    def test_nsb_toggle_conflicts_with_memory_nsb(self):
        with pytest.raises(ConfigError, match="nsb=True conflicts"):
            SystemSpec(
                mechanism="nvr",
                nsb=True,
                memory=MemoryConfig().with_nsb(True),
            )

    def test_make_system_rejects_double_nsb(self):
        from repro.api import make_system

        program = build_workload("st", scale=0.05)
        with pytest.raises(ConfigError, match="nsb=True conflicts"):
            make_system(program, nsb=True, memory=MemoryConfig().with_nsb(True))

    def test_nsb_toggle_with_plain_memory_override_is_fine(self):
        spec = SystemSpec(
            mechanism="nvr",
            nsb=True,
            memory=MemorySpec(l2_kib=128).build(),
        )
        assert spec.resolved_memory().nsb is not None

    def test_run_workload_propagates_validation(self):
        from repro.api import run_workload

        with pytest.raises(ConfigError):
            run_workload("st", mechanism="ooo", scale=0.05, nvr_config=NVRConfig())

    def test_unknown_mechanism_lists_known(self):
        with pytest.raises(ConfigError, match="unknown mechanism 'magic'"):
            SystemSpec(mechanism="magic")


class TestRegistry:
    def test_duplicate_registration_rejected(self):
        registry = Registry("thing")
        registry.register("a", 1)
        with pytest.raises(ConfigError, match="already registered"):
            registry.register("a", 2)
        registry.register("a", 2, replace=True)
        assert registry.get("a") == 2

    def test_decorator_form(self):
        registry = Registry("thing")

        @registry.register("fn")
        def fn():
            return 42

        assert registry.get("fn") is fn
        assert "fn" in registry and len(registry) == 1

    def test_mechanism_plugs_in_without_touching_api(self):
        # The extension path: register, run through the public API by
        # name, spec it, cache-key it — then unregister cleanly.
        MECHANISMS.register("null2", MechanismDef("null2", NullPrefetcher, mode="ooo"))
        try:
            from repro.api import run_workload

            result = run_workload("st", mechanism="null2", scale=0.05)
            assert result.mode == "ooo"
            spec = RunSpec("st", mechanism="null2", scale=0.05)
            clone = RunSpec.from_dict(spec.to_dict())
            assert clone == spec
        finally:
            MECHANISMS.unregister("null2")
        with pytest.raises(ConfigError):
            SystemSpec(mechanism="null2")

    def test_workload_plugs_in(self):
        @register_workload("tiny-st")
        def build(scale=1.0, elem_bytes=2, seed=0, **kwargs):
            return build_workload("st", scale=0.05, seed=seed)

        try:
            program = build_workload("tiny-st")
            assert program.n_rows > 0
        finally:
            WORKLOAD_BUILDERS.unregister("tiny-st")
        with pytest.raises(WorkloadError):
            build_workload("tiny-st")

    def test_mechanism_order_is_registered(self):
        assert set(MECHANISM_ORDER) <= set(MECHANISMS)
        # Modes plus the kernel-implementation dispatchers (needs_mode).
        assert set(ENGINES) == {
            "inorder",
            "ooo",
            "preload",
            "reference",
            "vectorized",
            "batched",
        }


class TestGoldenKeys:
    """Cache-key stability across interpreter runs (and accidental edits)."""

    def test_stable_hash_is_deterministic(self):
        d = {"b": 1, "a": [1, 2, {"z": True}]}
        assert stable_hash(d) == stable_hash(dict(reversed(d.items())))
        assert stable_hash(d) == (
            "0f4ecc2cc3d4a87c46460229fed460397dcea4d19afd09015e4a83b42bf826e8"
        )

    def test_golden_spec_keys(self):
        goldens = json.loads(GOLDEN_PATH.read_text())
        assert _current_goldens() == goldens, (
            "RunSpec serialisation format (or Grid expansion order) "
            "changed: this orphans every existing result cache. If "
            "intentional, regenerate with `PYTHONPATH=src python "
            "tests/test_spec.py regen` and call it out in the PR "
            "description."
        )


if __name__ == "__main__":
    import sys

    if len(sys.argv) > 1 and sys.argv[1] == "regen":
        goldens = _current_goldens()
        GOLDEN_PATH.write_text(json.dumps(goldens, indent=2) + "\n")
        print(f"wrote {GOLDEN_PATH} ({len(goldens)} entries)")
