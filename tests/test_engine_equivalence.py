"""The vectorized simulation kernels are bit-identical to reference.

The ``engine`` axis is *purely* a speed knob: every mechanism, on every
workload, must produce byte-for-byte identical result payloads on the
``vectorized`` kernels and the per-event ``reference`` kernels. This is
the contract that lets the engines share figures, caches and goldens —
a vectorized run is just a faster route to the same record.

Three layers of the contract are pinned here:

* **spec identity** — ``engine="reference"`` folds to the default spec
  (same key, same cache entry), while ``engine="vectorized"`` gets a
  *distinct* key, so the payload comparisons below genuinely execute
  both implementations rather than sharing one cache hit;
* **payload equality** — :func:`~repro.runner.pool.execute_spec` output
  (the wire/cache format) is compared as whole dicts, ``with_base``
  passes included, across every mechanism x workload x nsb point;
* **front-door equality** — a Grid sweep over the engine axis returns
  pairwise-identical results through the Session/cache pipeline.

The golden hashes in ``golden_spec_keys.json`` pin the engine axis's
serialisation (see ``test_spec.py``); this file pins its semantics.
"""

import dataclasses

import pytest

from repro.errors import ConfigError
from repro.registry import MECHANISM_ORDER
from repro.runner import RunSpec, execute_spec
from repro.session import Grid, Session
from repro.spec import SystemSpec

#: Small but non-trivial: one graph workload (irregular gathers, the
#: NVR/NSB fast paths) and one sparse-kernel workload (streaming).
WORKLOADS = ("gcn", "mk")

#: Every registered mechanism plus the preload oracle engine.
ALL_MECHANISMS = tuple(MECHANISM_ORDER) + ("preload",)

SCALE = 0.05


class TestEngineSpecIdentity:
    def test_reference_folds_to_default(self):
        assert SystemSpec(engine="reference") == SystemSpec()
        assert SystemSpec(engine=None) == SystemSpec()
        a = RunSpec("ds", engine="reference")
        b = RunSpec("ds")
        assert a == b and a.key() == b.key()

    def test_vectorized_is_a_distinct_cache_key(self):
        assert RunSpec("ds", engine="vectorized").key() != RunSpec("ds").key()
        assert SystemSpec(engine="vectorized") != SystemSpec()

    def test_mode_names_rejected_as_engines(self):
        with pytest.raises(ConfigError, match="execution mode"):
            SystemSpec(engine="inorder")

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigError):
            SystemSpec(engine="warp-drive")


class TestPayloadEquivalence:
    """execute_spec payloads: the bytes that reach caches and workers."""

    @pytest.mark.parametrize("workload", WORKLOADS)
    @pytest.mark.parametrize("mechanism", ALL_MECHANISMS)
    def test_vectorized_payload_bit_identical(self, workload, mechanism):
        reference = RunSpec(
            workload, mechanism=mechanism, scale=SCALE, with_base=True
        )
        vectorized = RunSpec(
            workload,
            mechanism=mechanism,
            scale=SCALE,
            with_base=True,
            engine="vectorized",
        )
        assert execute_spec(reference) == execute_spec(vectorized)

    @pytest.mark.parametrize("workload", WORKLOADS)
    @pytest.mark.parametrize("mechanism", ("nvr", "imp", "dvr"))
    def test_nsb_points_bit_identical(self, workload, mechanism):
        # The NSB demand/prefetch paths are separate hot loops in the
        # hierarchy; cover them explicitly for the NSB-using mechanisms.
        reference = RunSpec(workload, mechanism=mechanism, nsb=True, scale=SCALE)
        vectorized = RunSpec(
            workload,
            mechanism=mechanism,
            nsb=True,
            scale=SCALE,
            engine="vectorized",
        )
        assert execute_spec(reference) == execute_spec(vectorized)


class TestFrontDoorEquivalence:
    def test_grid_engine_axis_pairs_identical(self, tmp_path):
        grid = Grid(
            workload=list(WORKLOADS),
            mechanism=["inorder", "nvr"],
            scale=SCALE,
            engine=["reference", "vectorized"],
        )
        with Session(cache_dir=tmp_path, progress=False) as session:
            rs = session.sweep(grid)
        by_point: dict[tuple, list] = {}
        for spec, result in rs:
            key = (spec.workload, spec.mechanism)
            by_point.setdefault(key, []).append(dataclasses.asdict(result))
        assert len(by_point) == len(WORKLOADS) * 2
        for key, results in by_point.items():
            assert len(results) == 2, key
            assert results[0] == results[1], key
