"""The vectorized and batched simulation kernels are bit-identical to
reference.

The ``engine`` axis is *purely* a speed knob: every mechanism, on every
workload, must produce byte-for-byte identical result payloads on the
``vectorized`` kernels, the ``batched`` request-vector kernels and the
per-event ``reference`` kernels. This is the contract that lets the
engines share figures, caches and goldens — a vectorized or batched run
is just a faster route to the same record.

Three layers of the contract are pinned here:

* **spec identity** — ``engine="reference"`` folds to the default spec
  (same key, same cache entry), while ``engine="vectorized"`` and
  ``engine="batched"`` each get a *distinct* key, so the payload
  comparisons below genuinely execute every implementation rather than
  sharing one cache hit;
* **payload equality** — :func:`~repro.runner.pool.execute_spec` output
  (the wire/cache format) is compared as whole dicts, ``with_base``
  passes included, across every engine x mechanism x workload x nsb
  point;
* **front-door equality** — a Grid sweep over the engine axis returns
  pairwise-identical results through the Session/cache pipeline.

The golden hashes in ``golden_spec_keys.json`` pin the engine axis's
serialisation (see ``test_spec.py``); this file pins its semantics.
"""

import dataclasses

import pytest

from repro.errors import ConfigError
from repro.registry import MECHANISM_ORDER
from repro.runner import RunSpec, execute_spec
from repro.session import Grid, Session
from repro.spec import SystemSpec

#: Small but non-trivial: one graph workload (irregular gathers, the
#: NVR/NSB fast paths) and one sparse-kernel workload (streaming).
WORKLOADS = ("gcn", "mk")

#: Every registered mechanism plus the preload oracle engine.
ALL_MECHANISMS = tuple(MECHANISM_ORDER) + ("preload",)

#: The non-reference kernel implementations under the equivalence
#: contract. Adding an engine here (and to the spec-identity test) is
#: the entire cost of extending the guarantee to it.
FAST_ENGINES = ("vectorized", "batched")

SCALE = 0.05


class TestEngineSpecIdentity:
    def test_reference_folds_to_default(self):
        assert SystemSpec(engine="reference") == SystemSpec()
        assert SystemSpec(engine=None) == SystemSpec()
        a = RunSpec("ds", engine="reference")
        b = RunSpec("ds")
        assert a == b and a.key() == b.key()

    @pytest.mark.parametrize("engine", FAST_ENGINES)
    def test_fast_engines_are_distinct_cache_keys(self, engine):
        assert RunSpec("ds", engine=engine).key() != RunSpec("ds").key()
        assert SystemSpec(engine=engine) != SystemSpec()

    def test_fast_engines_distinct_from_each_other(self):
        assert (
            RunSpec("ds", engine="vectorized").key()
            != RunSpec("ds", engine="batched").key()
        )

    def test_mode_names_rejected_as_engines(self):
        with pytest.raises(ConfigError, match="execution mode"):
            SystemSpec(engine="inorder")

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigError):
            SystemSpec(engine="warp-drive")


class TestPayloadEquivalence:
    """execute_spec payloads: the bytes that reach caches and workers."""

    @pytest.mark.parametrize("engine", FAST_ENGINES)
    @pytest.mark.parametrize("workload", WORKLOADS)
    @pytest.mark.parametrize("mechanism", ALL_MECHANISMS)
    def test_engine_payload_bit_identical(self, workload, mechanism, engine):
        reference = RunSpec(
            workload, mechanism=mechanism, scale=SCALE, with_base=True
        )
        fast = RunSpec(
            workload,
            mechanism=mechanism,
            scale=SCALE,
            with_base=True,
            engine=engine,
        )
        assert execute_spec(reference) == execute_spec(fast)

    @pytest.mark.parametrize("engine", FAST_ENGINES)
    @pytest.mark.parametrize("workload", WORKLOADS)
    @pytest.mark.parametrize("mechanism", ("nvr", "imp", "dvr"))
    def test_nsb_points_bit_identical(self, workload, mechanism, engine):
        # The NSB demand/prefetch paths are separate hot loops in the
        # hierarchy; cover them explicitly for the NSB-using mechanisms.
        reference = RunSpec(workload, mechanism=mechanism, nsb=True, scale=SCALE)
        fast = RunSpec(
            workload,
            mechanism=mechanism,
            nsb=True,
            scale=SCALE,
            engine=engine,
        )
        assert execute_spec(reference) == execute_spec(fast)


class TestFrontDoorEquivalence:
    def test_grid_engine_axis_groups_identical(self, tmp_path):
        grid = Grid(
            workload=list(WORKLOADS),
            mechanism=["inorder", "nvr"],
            scale=SCALE,
            engine=["reference", *FAST_ENGINES],
        )
        with Session(cache_dir=tmp_path, progress=False) as session:
            rs = session.sweep(grid)
        by_point: dict[tuple, list] = {}
        for spec, result in rs:
            key = (spec.workload, spec.mechanism)
            by_point.setdefault(key, []).append(dataclasses.asdict(result))
        assert len(by_point) == len(WORKLOADS) * 2
        for key, results in by_point.items():
            assert len(results) == 1 + len(FAST_ENGINES), key
            assert all(r == results[0] for r in results[1:]), key
