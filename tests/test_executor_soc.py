"""Tests for the execution engines and the composed System."""

import pytest

from repro.errors import ConfigError
from repro.prefetch import NullPrefetcher, StreamPrefetcher
from repro.sim.memory.dram import DRAMConfig
from repro.sim.memory.hierarchy import MemoryConfig
from repro.sim.npu.executor import ExecutorConfig, build_engine
from repro.sim.npu.program import ProgramConfig, build_one_side_program
from repro.sim.soc import PerfectMemory, System
from repro.sim.stats import RunStats
from repro.sparse.generate import uniform_csr


def make_program(seed=11, rows=40, cols=1024, density=0.04, **cfg):
    w = uniform_csr(rows, cols, density, seed=seed)
    return build_one_side_program("x", w, ProgramConfig(**cfg))


def run(program, mode="inorder", factory=NullPrefetcher, memory=None, perfect=False):
    system = System(
        program=program,
        memory=memory or MemoryConfig(),
        prefetcher_factory=factory,
        mode=mode,
    )
    return system.run(perfect=perfect)


class TestExecutorConfig:
    def test_defaults(self):
        ExecutorConfig()

    def test_bad_issue_width(self):
        with pytest.raises(ConfigError):
            ExecutorConfig(issue_width=0)

    def test_bad_window(self):
        with pytest.raises(ConfigError):
            ExecutorConfig(ooo_window=0)

    def test_unknown_mode_rejected(self):
        prog = make_program()
        with pytest.raises(ConfigError):
            build_engine(
                "speculative",
                prog,
                PerfectMemory(MemoryConfig(), RunStats()),
                NullPrefetcher(),
                None,
                RunStats(),
                ExecutorConfig(),
            )


class TestTimingSanity:
    def test_run_is_deterministic(self):
        prog = make_program()
        a = run(prog).total_cycles
        b = run(prog).total_cycles
        assert a == b

    def test_ooo_not_slower_than_inorder(self):
        prog = make_program()
        ino = run(prog, mode="inorder").total_cycles
        ooo = run(prog, mode="ooo").total_cycles
        assert ooo <= ino

    def test_perfect_run_fastest(self):
        prog = make_program()
        real = run(prog).total_cycles
        perfect = run(prog, perfect=True).total_cycles
        assert perfect < real

    def test_base_plus_stall_equals_total(self):
        prog = make_program()
        result = System(program=prog).run_with_base()
        assert result.base_cycles is not None
        assert result.base_cycles + result.stall_cycles == result.total_cycles

    def test_compute_cycles_equal_across_modes(self):
        prog = make_program()
        ino = run(prog, mode="inorder").stats.compute_cycles
        ooo = run(prog, mode="ooo").stats.compute_cycles
        assert ino == ooo
        assert ino == sum(t.compute.cycles for t in prog.tiles)

    def test_total_exceeds_compute(self):
        prog = make_program()
        result = run(prog)
        assert result.total_cycles > result.stats.compute_cycles


class TestMemoryAccounting:
    def test_every_gather_element_counted(self):
        prog = make_program()
        result = run(prog)
        assert result.stats.batch.elements == prog.total_demand_elements()

    def test_cold_run_misses_everything_large_footprint(self):
        prog = make_program(rows=60, cols=8192, density=0.02)
        result = run(prog)
        stats = result.stats
        # Footprint >> L2: miss rate should be overwhelming.
        assert stats.l2.demand_miss_rate > 0.6

    def test_store_traffic_counted(self):
        prog = make_program()
        result = run(prog)
        assert result.stats.traffic.store_bytes > 0

    def test_off_chip_demand_bytes_match_misses(self):
        prog = make_program()
        stats = run(prog).stats
        assert stats.traffic.off_chip_demand_bytes == stats.l2.demand_misses * 64

    def test_batch_miss_ge_element_rate(self):
        prog = make_program(rows=60, cols=8192, density=0.02)
        stats = run(prog).stats
        assert stats.batch.batch_miss_rate >= stats.batch.element_miss_rate


class TestSystemPlumbing:
    def test_speedup_over(self):
        prog = make_program()
        slow = run(prog, mode="inorder")
        fast = run(prog, mode="ooo")
        assert fast.speedup_over(slow) >= 1.0

    def test_prefetcher_gets_fresh_instance_per_run(self):
        prog = make_program()
        instances = []

        def factory():
            p = StreamPrefetcher()
            instances.append(p)
            return p

        system = System(program=prog, prefetcher_factory=factory)
        system.run()
        system.run()
        assert len(instances) == 2
        assert instances[0] is not instances[1]

    def test_mechanism_name_recorded(self):
        prog = make_program()
        result = run(prog, factory=StreamPrefetcher)
        assert result.mechanism == "stream"

    def test_dram_bandwidth_affects_latency(self):
        prog = make_program(rows=60, cols=8192, density=0.02)
        slow = run(
            prog,
            memory=MemoryConfig(dram=DRAMConfig(latency=160, bytes_per_cycle=4)),
        ).total_cycles
        fast = run(
            prog,
            memory=MemoryConfig(dram=DRAMConfig(latency=160, bytes_per_cycle=64)),
        ).total_cycles
        assert slow > fast

    def test_dtype_widens_traffic(self):
        int8 = make_program(elem_bytes=1)
        int32 = make_program(elem_bytes=4)
        t8 = run(int8).stats.traffic.off_chip_total_bytes
        t32 = run(int32).stats.traffic.off_chip_total_bytes
        assert t32 > t8
