"""repro serve: ledger, engine, HTTP API, client, multi-tenant isolation.

The acceptance properties of the sweep-as-a-service daemon:

* a Grid POSTed over HTTP, drained by an ordinary queue worker, returns
  ResultSet JSON byte-identical to the same sweep run locally;
* an identical resubmission is answered entirely from cache — every
  point a hit, nothing enqueued;
* two tenants submitting the same spec get isolated cache namespaces
  (different salts, different directories) and both complete;
* a daemon killed mid-sweep resumes it from the ledger on restart.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.client import SweepClient
from repro.errors import ConfigError, ServerError, SimulationError
from repro.runner import RunSpec, expand, run_queue_worker
from repro.server import (
    SweepEngine,
    SweepLedger,
    SweepRecord,
    parse_submission,
    start_in_thread,
    sweep_id,
)
from repro.session import Grid, Session

SCALE = 0.05


def small_specs() -> list[RunSpec]:
    return expand("st", ["inorder", "nvr"], scales=SCALE)


def small_grid() -> Grid:
    return Grid(workload="st", mechanism=["inorder", "nvr"], scale=SCALE)


def start_worker(work_dir, **kwargs) -> threading.Thread:
    kwargs.setdefault("poll", 0.02)
    kwargs.setdefault("idle_timeout", 30)
    thread = threading.Thread(
        target=run_queue_worker, args=(work_dir,), kwargs=kwargs, daemon=True
    )
    thread.start()
    return thread


@pytest.fixture
def engine(tmp_path):
    eng = SweepEngine(tmp_path / "work", cache_dir=tmp_path / "cache")
    yield eng
    eng.shutdown()


@pytest.fixture
def server(engine):
    handle = start_in_thread(engine)
    yield handle
    handle.stop()


def wait_for(predicate, timeout=60.0, poll=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(poll)
    raise AssertionError("condition not reached in time")


def poll_until(engine, sid, state, timeout=60.0):
    """Drive engine.poll() (the server loop's job) until a target state."""

    def reached() -> bool:
        engine.poll()
        return engine.status(sid)["state"] == state

    wait_for(reached, timeout=timeout)


class TestLedger:
    def test_sweep_id_is_content_addressed(self):
        a, b = small_specs()
        assert sweep_id(None, [a, b]) == sweep_id(None, [a, b])
        assert sweep_id(None, [a, b]) != sweep_id(None, [b, a])
        assert sweep_id(None, [a, b]) != sweep_id("alice", [a, b])
        assert sweep_id("alice", [a]) != sweep_id("bob", [a])

    def test_record_roundtrip(self):
        record = SweepRecord.create("alice", small_specs(), meta={"figure": "9"})
        again = SweepRecord.from_dict(record.to_dict())
        assert again.id == record.id
        assert again.tenant == "alice"
        assert again.meta == {"figure": "9"}
        assert [s.key() for s in again.specs] == [s.key() for s in record.specs]

    def test_record_rejects_tampering_and_version_skew(self):
        record = SweepRecord.create(None, small_specs())
        tampered = record.to_dict()
        tampered["tenant"] = "mallory"
        with pytest.raises(ConfigError, match="does not match"):
            SweepRecord.from_dict(tampered)
        skewed = record.to_dict()
        skewed["format"] = 99
        with pytest.raises(ConfigError, match="format"):
            SweepRecord.from_dict(skewed)
        with pytest.raises(ConfigError, match="at least one point"):
            SweepRecord.create(None, [])

    def test_ledger_persists_and_skips_corrupt(self, tmp_path):
        ledger = SweepLedger(tmp_path)
        record = SweepRecord.create(None, small_specs())
        ledger.save(record)
        assert ledger.load(record.id).id == record.id
        (ledger.sweeps_dir / "junk.json").write_text("{not json")
        loaded = ledger.load_all()
        assert [r.id for r in loaded] == [record.id]
        with pytest.raises(ConfigError, match="no sweep record"):
            ledger.load("0" * 24)


class TestParseSubmission:
    def test_all_three_sources_expand_identically(self):
        grid = small_grid()
        expected = [s.key() for s in grid.specs()]
        for document in (
            {
                "grid": {
                    "workload": "st",
                    "mechanism": ["inorder", "nvr"],
                    "scale": SCALE,
                }
            },
            {"plan": grid.plan().to_dict()},
            {"specs": [s.to_dict() for s in grid.specs()]},
        ):
            specs, meta = parse_submission(document)
            assert [s.key() for s in specs] == expected
            assert meta == {}

    def test_meta_rides_along(self):
        _, meta = parse_submission(
            {"specs": [RunSpec("st", scale=SCALE).to_dict()], "meta": {"k": 1}}
        )
        assert meta == {"k": 1}

    @pytest.mark.parametrize(
        "document, match",
        [
            ([1, 2], "JSON object"),
            ({}, "exactly one of"),
            ({"grid": {"workload": "st"}, "specs": []}, "exactly one of"),
            ({"grid": {}}, "non-empty object"),
            ({"specs": []}, "non-empty list"),
            ({"specs": [42]}, "submission spec"),
            ({"specs": [RunSpec("st").to_dict()], "meta": 3}, "'meta'"),
        ],
    )
    def test_malformed_submissions_are_config_errors(self, document, match):
        with pytest.raises(ConfigError, match=match):
            parse_submission(document)


class TestSweepEngine:
    def test_prewarmed_submission_is_cached_and_enqueues_nothing(
        self, tmp_path, engine
    ):
        specs = small_specs()
        with Session(cache_dir=tmp_path / "cache") as session:
            local = session.sweep(specs)
        sid, created = engine.submit(specs)
        assert created
        status = engine.status(sid)
        assert status["state"] == "cached"
        assert status["points"]["cached_at_submit"] == 2
        assert not list(engine.queue.queue_dir.iterdir())
        assert engine.results(sid) == local.render("json")

    def test_duplicate_points_dedupe_but_results_keep_submission_order(
        self, tmp_path, engine
    ):
        spec = RunSpec("st", scale=SCALE)
        with Session(cache_dir=tmp_path / "cache") as session:
            session.sweep([spec])
        sid, _ = engine.submit([spec, spec, spec])
        status = engine.status(sid)
        assert status["points"] == {
            "total": 3,
            "unique": 1,
            "done": 1,
            "cached_at_submit": 1,
            "queued": 0,
            "running": 0,
        }
        assert len(json.loads(engine.results(sid))) == 3

    def test_drain_through_queue_worker(self, engine):
        sid, _ = engine.submit(small_specs())
        assert engine.status(sid)["state"] == "queued"
        with pytest.raises(ConfigError, match="no results yet"):
            engine.results(sid)
        worker = start_worker(engine.work_dir)
        poll_until(engine, sid, "done")
        assert engine.status(sid)["points"]["done"] == 2
        records = json.loads(engine.results(sid))
        assert {r["mechanism"] for r in records} == {"inorder", "nvr"}
        worker.join(30)

    def test_unknown_sweep_is_config_error(self, engine):
        with pytest.raises(ConfigError, match="unknown sweep"):
            engine.status("f" * 24)
        with pytest.raises(ConfigError, match="unknown sweep"):
            engine.results("f" * 24)
        with pytest.raises(ConfigError, match="unknown sweep"):
            engine.subscribe("f" * 24, lambda event: None)

    def test_failed_sweep_reports_and_resubmission_retries(
        self, engine, monkeypatch
    ):
        import repro.runner.pool as pool

        calls = {"n": 0}
        real_execute = pool.execute_spec

        def flaky_execute(spec):
            if spec.seed == 7:
                calls["n"] += 1
                if calls["n"] == 1:
                    raise SimulationError("synthetic failure")
            return real_execute(spec)

        monkeypatch.setattr(pool, "execute_spec", flaky_execute)
        bad = RunSpec("st", scale=SCALE, seed=7)
        worker = start_worker(engine.work_dir, max_units=1)
        sid, _ = engine.submit([bad])
        poll_until(engine, sid, "failed")
        status = engine.status(sid)
        assert "synthetic failure" in status["error"]
        # The error is durable: a reloaded engine reports it too.
        assert engine.ledger.load(sid).error is not None
        worker.join(30)

        # Resubmitting clears the error and retries (second run succeeds).
        worker = start_worker(engine.work_dir, max_units=1)
        sid2, created = engine.submit([bad])
        assert sid2 == sid and not created
        poll_until(engine, sid, "done")
        assert engine.status(sid)["error"] is None
        worker.join(30)

    def test_restart_mid_sweep_resumes_from_ledger(self, tmp_path):
        work, cache = tmp_path / "work", tmp_path / "cache"
        first = SweepEngine(work, cache_dir=cache)
        sid, _ = first.submit(small_specs())
        wait_for(lambda: len(list(first.queue.queue_dir.iterdir())) == 2)
        first.shutdown()  # daemon dies with units still queued

        second = SweepEngine(work, cache_dir=cache)
        assert second.start() == 1  # the sweep came back as pending
        assert second.status(sid)["state"] == "queued"
        worker = start_worker(work)
        poll_until(second, sid, "done")
        records = json.loads(second.results(sid))
        assert len(records) == 2
        worker.join(30)
        second.shutdown()

        # A third restart finds everything already cached: nothing resumes.
        third = SweepEngine(work, cache_dir=cache)
        assert third.start() == 0
        assert third.status(sid)["state"] == "cached"
        third.shutdown()

    def test_subscribe_replays_landed_points_exactly_once(self, engine):
        specs = small_specs()
        worker = start_worker(engine.work_dir)
        sid, _ = engine.submit(specs)
        live: list = []
        replay, unsubscribe = engine.subscribe(sid, live.append)
        poll_until(engine, sid, "done")
        events = replay + live
        assert [e["event"] for e in events] == ["point", "point", "done"]
        assert [e["done"] for e in events[:2]] == [1, 2]
        unsubscribe()
        # A late subscriber gets the full story as replay, nothing live.
        replay2, unsub2 = engine.subscribe(sid, live.append)
        assert [e["event"] for e in replay2] == ["point", "point", "done"]
        unsub2()
        worker.join(30)

    def test_stats_counts_sweeps_and_hit_rate(self, tmp_path, engine):
        specs = small_specs()
        with Session(cache_dir=tmp_path / "cache") as session:
            session.sweep(specs)
        engine.submit(specs)
        engine.submit(specs)  # resubmission: 4 seen, 4 cached
        stats = engine.stats()
        assert stats["server"]["sweeps"] == {"total": 1, "cached": 1}
        assert stats["cache"]["points_submitted"] == 4
        assert stats["cache"]["hit_rate"] == 1.0
        assert stats["queue"]["queued"] == 0
        assert stats["fleet"] == {
            "driver": None,
            "size": 0,
            "workers": 0,
            "restarts": 0,
        }


class TestHTTPServer:
    def test_end_to_end_bit_equal_and_warm_resubmit(self, tmp_path, server):
        client = SweepClient(server.base_url)
        assert client.health() == {"ok": True}

        worker = start_worker(server.engine.work_dir)
        accepted = client.submit(small_grid(), meta={"who": "ci"})
        assert accepted["created"] is True
        final = client.wait(accepted["id"], timeout=120)
        assert final["state"] == "done"
        worker.join(30)

        # Byte-identical to the same sweep run through a local Session.
        with Session(cache_dir=tmp_path / "cache2") as session:
            local = session.sweep(small_grid())
        assert client.results(accepted["id"]) == local.render("json")
        out = tmp_path / "results.json"
        client.results(accepted["id"], path=out)
        assert out.read_text() == local.render("json")
        assert client.results(accepted["id"], fmt="csv") == local.render("csv")

        # Identical resubmission: pure cache, nothing enqueued.
        again = client.submit(small_grid(), meta={"who": "ci"})
        assert again["id"] == accepted["id"]
        assert again["created"] is False
        assert again["state"] == "cached"
        points = again["points"]
        assert points["cached_at_submit"] == points["unique"] == points["done"]
        assert not list(server.engine.queue.queue_dir.iterdir())

        listed = client.list_sweeps()
        assert [s["id"] for s in listed] == [accepted["id"]]

    def test_tenants_get_isolated_namespaces(self, server):
        worker = start_worker(server.engine.work_dir)
        alice = SweepClient(server.base_url, tenant="alice")
        bob = SweepClient(server.base_url, tenant="bob")

        a = alice.submit(small_grid())
        b = bob.submit(small_grid())
        assert a["id"] != b["id"]  # tenant is part of the content address
        assert a["tenant"] == "alice" and b["tenant"] == "bob"
        alice.wait(a["id"], timeout=120)
        bob.wait(b["id"], timeout=120)
        assert alice.results(a["id"]) == bob.results(b["id"])

        engine = server.engine
        alice_cache = engine.cache_for("alice")
        bob_cache = engine.cache_for("bob")
        default_cache = engine.cache_for(None)
        # Different salts and disjoint directories per tenant ...
        assert alice_cache.salt != bob_cache.salt != default_cache.salt
        assert alice_cache.root != bob_cache.root
        assert len(alice_cache.entries()) == 2
        assert len(bob_cache.entries()) == 2
        # ... and nothing leaked into the default namespace.
        assert len(default_cache.entries()) == 0
        assert default_cache.tenants() == ["alice", "bob"]
        worker.join(30)

    def test_sse_stream_ends_with_done(self, server):
        client = SweepClient(server.base_url)
        worker = start_worker(server.engine.work_dir)
        accepted = client.submit(small_grid())
        events = list(client.events(accepted["id"], timeout=120))
        assert [e["event"] for e in events] == ["point", "point", "done"]
        assert events[-1]["total"] == 2
        labels = {e["label"] for e in events[:2]}
        assert labels == {s.label() for s in small_grid().specs()}
        worker.join(30)

    def test_http_error_surface(self, server):
        client = SweepClient(server.base_url)
        base = server.base_url

        with pytest.raises(ServerError, match="unknown sweep") as info:
            client.status("f" * 24)
        assert info.value.status == 404
        with pytest.raises(ServerError, match="no route"):
            client._json("/nope")
        with pytest.raises(ServerError, match="still queued"):
            # No worker is draining this work dir, so a short wait on a
            # queued sweep times out with the state in the message.
            accepted = client.submit([RunSpec("st", scale=SCALE, seed=11)])
            client.wait(accepted["id"], timeout=0.2, poll=0.05)
        assert base.startswith("http://127.0.0.1:")

    def test_http_status_codes(self, server):
        base = server.base_url

        def code_of(path, data=None, method=None, headers=None):
            request = urllib.request.Request(
                base + path, data=data, method=method, headers=headers or {}
            )
            try:
                with urllib.request.urlopen(request) as response:
                    return response.status, json.loads(response.read())
            except urllib.error.HTTPError as exc:
                return exc.code, json.loads(exc.read())

        assert code_of("/healthz")[0] == 200
        assert code_of("/nope")[0] == 404
        assert code_of("/healthz", data=b"{}", method="POST")[0] == 405
        assert code_of("/v1/sweeps", data=b"not json", method="POST")[0] == 400
        code, body = code_of(
            "/v1/sweeps",
            data=json.dumps({"grid": {"workload": "st", "scale": SCALE}}).encode(),
            method="POST",
            headers={"X-Repro-Tenant": "no spaces allowed"},
        )
        assert code == 400 and "tenant" in body["error"]
        # A queued sweep's results are a 409 Conflict, not an error page.
        code, body = code_of(
            "/v1/sweeps",
            data=json.dumps(
                {"specs": [RunSpec("st", scale=SCALE, seed=3).to_dict()]}
            ).encode(),
            method="POST",
        )
        assert code == 201 and body["state"] == "queued"
        code, error = code_of(f"/v1/sweeps/{body['id']}/results")
        assert code == 409 and "no results yet" in error["error"]
        code, error = code_of(f"/v1/sweeps/{body['id']}/results?format=xml")
        assert code == 400 and "unknown result format" in error["error"]

    def test_stats_endpoint_matches_queue_status_json_cli(
        self, server, capsys
    ):
        from repro.__main__ import main as cli_main

        client = SweepClient(server.base_url)
        stats = client.stats()
        assert set(stats) == {"server", "cache", "queue", "workers", "fleet"}
        rc = cli_main(
            ["queue", "status", "--work-dir", str(server.engine.work_dir), "--json"]
        )
        assert rc == 0
        document = json.loads(capsys.readouterr().out)
        cli_queue = {k: v for k, v in document.items() if k != "work_dir"}
        assert cli_queue == stats["queue"]


class TestSweepClientOffline:
    def test_unreachable_daemon_is_server_error(self):
        client = SweepClient("http://127.0.0.1:9", timeout=0.5)
        with pytest.raises(ServerError, match="cannot reach"):
            client.health()

    def test_wire_body_shapes(self):
        from repro.client import _wire_body

        grid = small_grid()
        assert _wire_body(grid) == {
            "specs": [s.to_dict() for s in grid.specs()]
        }
        plan = grid.plan()
        assert _wire_body(plan) == {"plan": plan.to_dict()}
        spec = RunSpec("st", scale=SCALE)
        assert _wire_body(spec) == {"specs": [spec.to_dict()]}
        assert _wire_body([spec]) == {"specs": [spec.to_dict()]}
        assert _wire_body({"grid": {"workload": "st"}}) == {
            "grid": {"workload": "st"}
        }
        with pytest.raises(ConfigError, match="cannot submit"):
            _wire_body(42)
        with pytest.raises(ConfigError, match="only RunSpec"):
            _wire_body(["st"])
