"""Tests for the explicit-preload (coarse DMA) execution engine."""

import pytest

from repro import run_workload
from repro.errors import ConfigError
from repro.sim.npu.executor import ExecutorConfig
from repro.workloads import build_workload

SCALE = 0.2


class TestConfig:
    def test_bad_granule(self):
        with pytest.raises(ConfigError):
            ExecutorConfig(preload_granule=48)
        with pytest.raises(ConfigError):
            ExecutorConfig(preload_granule=32)

    def test_bad_scratchpad_latency(self):
        with pytest.raises(ConfigError):
            ExecutorConfig(scratchpad_read_latency=0)


class TestPreloadBehaviour:
    @pytest.fixture(scope="class")
    def runs(self):
        return {
            mech: run_workload("ds", mechanism=mech, scale=SCALE)
            for mech in ("inorder", "preload", "nvr")
        }

    def test_overfetches_heavily(self, runs):
        """The paper's Sec. II: explicit buffers over-fetch scattered data."""
        preload = runs["preload"].stats.traffic.off_chip_total_bytes
        inorder = runs["inorder"].stats.traffic.off_chip_total_bytes
        assert preload > 3 * inorder

    def test_no_cache_misses(self, runs):
        """Scratchpad-resident gathers never touch the cache path."""
        assert runs["preload"].stats.l2.demand_misses <= \
            runs["inorder"].stats.l2.demand_misses * 0.5
        assert runs["preload"].stats.batch.batch_misses == 0

    def test_time_comparable_to_inorder(self, runs):
        """'These two scenarios are essentially identical' — preload trades
        stall time for transfer volume; neither wins decisively."""
        ratio = runs["preload"].total_cycles / runs["inorder"].total_cycles
        assert 0.5 < ratio < 2.0

    def test_nvr_beats_both(self, runs):
        assert runs["nvr"].total_cycles < runs["preload"].total_cycles
        assert runs["nvr"].total_cycles < runs["inorder"].total_cycles

    def test_scratchpad_traffic_recorded(self, runs):
        assert runs["preload"].stats.traffic.scratchpad_bytes > 0

    def test_deterministic(self):
        a = run_workload("gcn", mechanism="preload", scale=SCALE)
        b = run_workload("gcn", mechanism="preload", scale=SCALE)
        assert a.total_cycles == b.total_cycles

    def test_elements_accounted(self):
        program = build_workload("gcn", scale=SCALE)
        result = run_workload("gcn", mechanism="preload", scale=SCALE)
        assert result.stats.batch.elements == program.total_demand_elements()

    def test_works_on_all_workloads(self):
        for workload in ("mk", "st"):
            result = run_workload(workload, mechanism="preload", scale=SCALE)
            assert result.total_cycles > 0
