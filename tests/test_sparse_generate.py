"""Tests for sparsity-pattern generators."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.sparse.generate import (
    banded_csr,
    block_csr,
    hash_clustered_csr,
    powerlaw_csr,
    uniform_csr,
    zipf_csr,
)


class TestCommonInvariants:
    GENERATORS = [
        lambda seed: uniform_csr(64, 256, 0.1, seed=seed),
        lambda seed: zipf_csr(64, 256, 0.1, seed=seed),
        lambda seed: block_csr(64, 256, 0.1, block=8, seed=seed),
        lambda seed: banded_csr(64, 256, 0.1, bandwidth=32, seed=seed),
        lambda seed: powerlaw_csr(64, 256, avg_degree=8, seed=seed),
        lambda seed: hash_clustered_csr(64, 256, avg_degree=8, seed=seed),
    ]

    @pytest.mark.parametrize("gen", GENERATORS)
    def test_deterministic_by_seed(self, gen):
        a, b = gen(42), gen(42)
        assert np.array_equal(a.rowptr, b.rowptr)
        assert np.array_equal(a.col_indices, b.col_indices)

    @pytest.mark.parametrize("gen", GENERATORS)
    def test_different_seeds_differ(self, gen):
        a, b = gen(1), gen(2)
        assert not (
            np.array_equal(a.rowptr, b.rowptr)
            and np.array_equal(a.col_indices, b.col_indices)
        )

    @pytest.mark.parametrize("gen", GENERATORS)
    def test_valid_csr(self, gen):
        m = gen(0)
        assert m.n_rows == 64
        assert m.n_cols == 256
        if m.nnz:
            assert m.col_indices.max() < 256
            assert m.col_indices.min() >= 0


class TestUniform:
    def test_density_close_to_target(self):
        m = uniform_csr(200, 500, 0.1, seed=3)
        assert m.density == pytest.approx(0.1, rel=0.15)

    def test_rejects_bad_density(self):
        with pytest.raises(WorkloadError):
            uniform_csr(10, 10, 0.0)
        with pytest.raises(WorkloadError):
            uniform_csr(10, 10, 1.5)

    def test_rejects_bad_shape(self):
        with pytest.raises(WorkloadError):
            uniform_csr(0, 10, 0.5)


class TestZipf:
    def test_column_popularity_skewed(self):
        m = zipf_csr(400, 300, 0.08, alpha=1.4, seed=5)
        counts = np.bincount(m.col_indices, minlength=300)
        top = np.sort(counts)[::-1]
        # Top 10% of columns should absorb well over 10% of references.
        assert top[:30].sum() > 0.3 * counts.sum()

    def test_rejects_bad_alpha(self):
        with pytest.raises(WorkloadError):
            zipf_csr(10, 10, 0.5, alpha=0.0)


class TestBlock:
    def test_entries_confined_to_active_blocks(self):
        m = block_csr(64, 64, 0.2, block=16, intra_density=1.0, seed=7)
        dense = m.to_dense()
        for br in range(4):
            for bc in range(4):
                tile = dense[br * 16 : (br + 1) * 16, bc * 16 : (bc + 1) * 16]
                filled = np.count_nonzero(tile)
                assert filled in (0, 256)  # fully dense or fully empty

    def test_rejects_oversized_block(self):
        with pytest.raises(WorkloadError):
            block_csr(8, 8, 0.5, block=16)


class TestBanded:
    def test_entries_within_band(self):
        m = banded_csr(100, 100, 0.1, bandwidth=10, seed=9)
        for r in range(m.n_rows):
            cols, _ = m.row_slice(r)
            if len(cols):
                assert np.all(np.abs(cols - r) <= 5)

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(WorkloadError):
            banded_csr(10, 10, 0.5, bandwidth=0)


class TestPowerlaw:
    def test_mean_degree_near_target(self):
        m = powerlaw_csr(500, 1000, avg_degree=10, seed=11)
        assert m.row_nnz().mean() == pytest.approx(10, rel=0.35)

    def test_degree_distribution_has_hubs(self):
        m = powerlaw_csr(500, 1000, avg_degree=8, seed=13)
        degrees = m.row_nnz()
        assert degrees.max() > 4 * degrees.mean()

    def test_rejects_bad_degree(self):
        with pytest.raises(WorkloadError):
            powerlaw_csr(10, 10, avg_degree=0)


class TestHashClustered:
    def test_consecutive_rows_share_neighbours(self):
        m = hash_clustered_csr(256, 4096, avg_degree=16, cluster_size=32, seed=17)
        shared = 0
        pairs = 0
        for r in range(0, 200, 2):
            a = set(m.row_slice(r)[0].tolist())
            b = set(m.row_slice(r + 1)[0].tolist())
            if a and b:
                shared += len(a & b)
                pairs += 1
        assert pairs > 0
        assert shared / pairs > 0.5  # real reuse between neighbours

    def test_indices_scattered_in_address_space(self):
        m = hash_clustered_csr(256, 4096, avg_degree=16, cluster_size=32, seed=17)
        cols, _ = m.row_slice(0)
        if len(cols) > 4:
            # Spread far beyond the 64-wide coordinate window.
            assert cols.max() - cols.min() > 256

    def test_rejects_bad_params(self):
        with pytest.raises(WorkloadError):
            hash_clustered_csr(10, 10, avg_degree=-1)
