"""Tests for the composed memory hierarchy (NSB -> L2 -> DRAM)."""

import pytest

from repro.errors import ConfigError
from repro.sim.memory.cache import CacheConfig
from repro.sim.memory.dram import DRAMConfig
from repro.sim.memory.hierarchy import (
    MemoryConfig,
    MemorySystem,
    default_nsb_config,
)
from repro.sim.request import Access, AccessType, HitLevel
from repro.sim.stats import RunStats


def make_system(nsb: bool = False, **dram_kw) -> MemorySystem:
    cfg = MemoryConfig(
        l2=CacheConfig(size_bytes=8 * 1024, assoc=4, hit_latency=18, name="l2"),
        dram=DRAMConfig(latency=100, bytes_per_cycle=16, **dram_kw),
        nsb=default_nsb_config() if nsb else None,
    )
    return MemorySystem(cfg, RunStats())


def demand(line_addr: int) -> Access:
    return Access(line_addr=line_addr, access_type=AccessType.DEMAND)


class TestConfig:
    def test_defaults(self):
        cfg = MemoryConfig()
        assert cfg.l2.size_bytes == 256 * 1024
        assert cfg.nsb is None

    def test_with_nsb_toggles(self):
        cfg = MemoryConfig().with_nsb(True)
        assert cfg.nsb is not None
        assert cfg.with_nsb(False).nsb is None

    def test_mismatched_line_sizes_rejected(self):
        nsb = CacheConfig(size_bytes=16 * 1024, assoc=16, line_bytes=32, name="nsb")
        with pytest.raises(ConfigError):
            MemoryConfig(nsb=nsb)


class TestDemandPath:
    def test_cold_miss_goes_off_chip(self):
        mem = make_system()
        res = mem.demand_access(0, demand(0x1000), irregular=True)
        assert res.hit_level == HitLevel.DRAM
        assert res.off_chip
        assert res.complete_at > 100
        assert mem.stats.l2.demand_misses == 1
        assert mem.stats.traffic.off_chip_demand_bytes == 64

    def test_second_access_hits_l2(self):
        mem = make_system()
        first = mem.demand_access(0, demand(0x1000), irregular=True)
        res = mem.demand_access(first.complete_at + 1, demand(0x1000), irregular=True)
        assert res.hit_level == HitLevel.L2
        assert res.complete_at == first.complete_at + 1 + 18
        assert mem.stats.l2.demand_hits == 1

    def test_inflight_coalesce(self):
        mem = make_system()
        first = mem.demand_access(0, demand(0x1000), irregular=True)
        res = mem.demand_access(5, demand(0x1000), irregular=True)
        assert res.hit_level == HitLevel.INFLIGHT
        assert res.complete_at == first.complete_at
        assert mem.stats.l2.demand_inflight_hits == 1
        # Coalesce must not issue a second DRAM transfer.
        assert mem.dram.transfers == 1

    def test_hit_latency_helper(self):
        mem = make_system(nsb=True)
        assert mem.hit_latency(irregular=True) == 2
        assert mem.hit_latency(irregular=False) == 18
        assert make_system().hit_latency(irregular=True) == 18


class TestNSBPath:
    def test_irregular_fill_populates_nsb(self):
        mem = make_system(nsb=True)
        first = mem.demand_access(0, demand(0x1000), irregular=True)
        res = mem.demand_access(first.complete_at + 1, demand(0x1000), irregular=True)
        assert res.hit_level == HitLevel.NSB
        assert res.complete_at == first.complete_at + 1 + 2

    def test_regular_stream_bypasses_nsb(self):
        mem = make_system(nsb=True)
        first = mem.demand_access(0, demand(0x1000), irregular=False)
        res = mem.demand_access(first.complete_at + 1, demand(0x1000), irregular=False)
        assert res.hit_level == HitLevel.L2
        assert mem.stats.nsb.demand_accesses == 0

    def test_nsb_miss_counted(self):
        mem = make_system(nsb=True)
        mem.demand_access(0, demand(0x1000), irregular=True)
        assert mem.stats.nsb.demand_misses == 1


class TestPrefetchPath:
    def test_prefetch_then_demand_is_useful(self):
        mem = make_system()
        assert mem.prefetch_line(0, 0x1000, irregular=True)
        res = mem.demand_access(500, demand(0x1000), irregular=True)
        assert res.was_prefetched
        assert res.hit_level == HitLevel.L2
        assert mem.stats.prefetch.useful == 1
        assert mem.stats.prefetch.issued == 1

    def test_late_prefetch_counted(self):
        mem = make_system()
        mem.prefetch_line(0, 0x1000, irregular=True)
        res = mem.demand_access(5, demand(0x1000), irregular=True)
        assert res.was_prefetched
        assert res.hit_level == HitLevel.INFLIGHT
        assert mem.stats.prefetch.late == 1
        assert mem.stats.prefetch.useful == 0

    def test_useful_counted_once_per_line(self):
        mem = make_system()
        mem.prefetch_line(0, 0x1000, irregular=True)
        mem.demand_access(500, demand(0x1000), irregular=True)
        mem.demand_access(600, demand(0x1000), irregular=True)
        assert mem.stats.prefetch.useful == 1

    def test_redundant_prefetch_squashed(self):
        mem = make_system()
        first = mem.demand_access(0, demand(0x1000), irregular=False)
        assert not mem.prefetch_line(first.complete_at + 1, 0x1000, irregular=False)
        assert mem.stats.prefetch.issued == 0

    def test_prefetch_charged_to_prefetch_traffic(self):
        mem = make_system()
        mem.prefetch_line(0, 0x1000, irregular=True)
        assert mem.stats.traffic.off_chip_prefetch_bytes == 64
        assert mem.stats.traffic.off_chip_demand_bytes == 0

    def test_nsb_pull_from_l2_no_dram(self):
        mem = make_system(nsb=True)
        first = mem.demand_access(0, demand(0x1000), irregular=False)
        transfers_before = mem.dram.transfers
        assert mem.prefetch_line(first.complete_at + 1, 0x1000, irregular=True)
        assert mem.dram.transfers == transfers_before
        res = mem.demand_access(first.complete_at + 100, demand(0x1000), irregular=True)
        assert res.hit_level == HitLevel.NSB

    def test_prefetch_fills_nsb_and_l2(self):
        mem = make_system(nsb=True)
        mem.prefetch_line(0, 0x1000, irregular=True)
        assert mem.nsb.probe(0x1000) is not None
        assert mem.l2.probe(0x1000) is not None


class TestCoverageAccounting:
    def test_coverage_fraction(self):
        mem = make_system()
        # 2 prefetched lines used, 2 uncovered misses.
        mem.prefetch_line(0, 0x1000, irregular=True)
        mem.prefetch_line(0, 0x2000, irregular=True)
        mem.demand_access(1000, demand(0x1000), irregular=True)
        mem.demand_access(1000, demand(0x2000), irregular=True)
        mem.demand_access(1000, demand(0x3000), irregular=True)
        mem.demand_access(2000, demand(0x4000), irregular=True)
        assert mem.stats.coverage() == pytest.approx(0.5)

    def test_evicted_unused_prefetch_is_not_useful(self):
        mem = make_system()
        mem.prefetch_line(0, 0x1000, irregular=True)
        # Thrash the set until the prefetched line is evicted: the L2 here is
        # 8KiB/4-way/64B -> 32 sets; lines 32 sets apart collide.
        set_stride = 32 * 64
        for i in range(1, 6):
            mem.demand_access(1000 + i, demand(0x1000 + i * set_stride), irregular=True)
        res = mem.demand_access(10_000, demand(0x1000), irregular=True)
        assert not res.was_prefetched
        assert mem.stats.prefetch.useful == 0

    def test_finalize_folds_counters(self):
        mem = make_system()
        mem.demand_access(0, demand(0x1000), irregular=True)
        mem.finalize(total_cycles=5000)
        assert mem.stats.dram_busy_cycles == mem.dram.busy_cycles
        assert mem.stats.total_cycles == 5000
