"""Tests for the NPU ISA: line decomposition of vector instructions."""

import numpy as np
import pytest

from repro.errors import ProgramError
from repro.sim.npu.isa import (
    TileCompute,
    VectorGather,
    VectorLoad,
    VectorStore,
    decompose,
)


class TestVectorLoad:
    def test_contiguous_elements_share_lines(self):
        load = VectorLoad(
            stream_id=1,
            byte_addrs=np.arange(0, 64, 4, dtype=np.int64),
            elem_bytes=4,
        )
        lines = load.line_addrs(64)
        assert list(lines) == [0]

    def test_elements_spanning_two_lines(self):
        load = VectorLoad(
            stream_id=1,
            byte_addrs=np.array([60], dtype=np.int64),
            elem_bytes=8,
        )
        assert list(load.line_addrs(64)) == [0, 64]

    def test_empty_load(self):
        load = VectorLoad(1, np.zeros(0, dtype=np.int64), 4)
        assert len(load.line_addrs(64)) == 0

    def test_first_touch_order_preserved(self):
        load = VectorLoad(
            stream_id=1,
            byte_addrs=np.array([128, 0, 64], dtype=np.int64),
            elem_bytes=4,
        )
        assert list(load.line_addrs(64)) == [128, 0, 64]


class TestVectorGather:
    def test_segment_spanning_lines(self):
        g = VectorGather(
            stream_id=3,
            index_values=np.array([5], dtype=np.int64),
            byte_addrs=np.array([100], dtype=np.int64),
            seg_bytes=128,
            affine=True,
        )
        per_elem = g.element_lines(64)
        assert list(per_elem[0]) == [64, 128, 192]

    def test_line_addrs_dedup(self):
        g = VectorGather(
            stream_id=3,
            index_values=np.array([1, 2], dtype=np.int64),
            byte_addrs=np.array([0, 32], dtype=np.int64),
            seg_bytes=32,
            affine=True,
        )
        assert list(g.line_addrs(64)) == [0]

    def test_length_mismatch_raises(self):
        with pytest.raises(ProgramError):
            VectorGather(
                stream_id=3,
                index_values=np.array([1], dtype=np.int64),
                byte_addrs=np.array([0, 64], dtype=np.int64),
                seg_bytes=64,
                affine=True,
            )


class TestVectorStore:
    def test_n_bytes(self):
        store = VectorStore(5, np.arange(10, dtype=np.int64), 4)
        assert store.n_bytes() == 40


class TestTileCompute:
    def test_negative_cycles_rejected(self):
        with pytest.raises(ProgramError):
            TileCompute(cycles=-1)

    def test_valid(self):
        tc = TileCompute(cycles=10, sparse_unit_cycles=3)
        assert tc.cycles == 10


class TestDecompose:
    def test_batches_bounded_by_width(self):
        lines = np.arange(0, 64 * 40, 64, dtype=np.int64)
        batches = decompose(lines, 3, True, vector_width=16)
        assert len(batches) == 3
        assert all(len(b.line_addrs) <= 16 for b in batches)
        assert sum(len(b.line_addrs) for b in batches) == 40

    def test_index_values_sliced_alongside(self):
        lines = np.arange(0, 64 * 20, 64, dtype=np.int64)
        idx = np.arange(20, dtype=np.int64)
        batches = decompose(lines, 3, True, 16, index_values=idx)
        assert list(batches[1].index_values) == list(range(16, 20))

    def test_zero_width_rejected(self):
        with pytest.raises(ProgramError):
            decompose(np.zeros(1, dtype=np.int64), 1, False, 0)
