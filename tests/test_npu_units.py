"""Tests for the systolic model, sparse unit and control CPU."""

import pytest

from repro.errors import ConfigError, SimulationError
from repro.sim.cpu import PC_INNER_LOOP, PC_OUTER_LOOP, ControlCPU
from repro.sim.npu.program import ProgramConfig, build_one_side_program
from repro.sim.npu.sparse_unit import SparseUnit
from repro.sim.npu.systolic import SystolicConfig, SystolicModel
from repro.sim.npu.isa import STREAM_IA_GATHER
from repro.sparse.generate import uniform_csr


def make_program():
    w = uniform_csr(16, 256, 0.1, seed=7)
    return build_one_side_program("u", w, ProgramConfig(vector_width=8))


class TestSystolic:
    def test_zero_work_zero_cycles(self):
        model = SystolicModel()
        assert model.tile_cycles(0, 64) == 0
        assert model.tile_cycles(16, 0) == 0

    def test_cycles_scale_with_work(self):
        model = SystolicModel()
        small = model.tile_cycles(16, 16)
        big = model.tile_cycles(64, 64)
        assert big > small

    def test_fill_drain_included(self):
        model = SystolicModel(SystolicConfig(fill_drain=100))
        assert model.tile_cycles(1, 1) > 100

    def test_sparse_unit_cycles(self):
        model = SystolicModel(SystolicConfig(sparse_align_cycles_per_elem=0.5))
        assert model.sparse_unit_cycles(16) == 8

    def test_peak_macs(self):
        assert SystolicModel(SystolicConfig(rows=8, cols=8)).peak_macs_per_cycle() == 64

    def test_bad_config(self):
        with pytest.raises(ConfigError):
            SystolicConfig(rows=0)
        with pytest.raises(ConfigError):
            SystolicConfig(fill_drain=-1)


class TestSparseUnit:
    def test_resolve_matches_stream(self):
        prog = make_program()
        unit = SparseUnit(prog)
        stream = prog.gather_streams[STREAM_IA_GATHER]
        assert unit.resolve(STREAM_IA_GATHER, 5) == stream.address(5)

    def test_resolve_unknown_stream_raises(self):
        unit = SparseUnit(make_program())
        with pytest.raises(SimulationError):
            unit.resolve(99, 0)

    def test_rowptr_window(self):
        prog = make_program()
        unit = SparseUnit(prog)
        start, end = unit.rowptr_window(0)
        assert (start, end) == (int(prog.rowptr[0]), int(prog.rowptr[1]))

    def test_rowptr_window_out_of_range(self):
        unit = SparseUnit(make_program())
        with pytest.raises(SimulationError):
            unit.rowptr_window(10_000)

    def test_occupy_then_idle(self):
        unit = SparseUnit(make_program())
        unit.occupy(100, 50)
        assert unit.next_idle(0) == 150
        assert unit.next_idle(200) == 200

    def test_runahead_queues_behind_real_work(self):
        unit = SparseUnit(make_program())
        unit.occupy(0, 100)
        start = unit.grant_runahead(10, 20)
        assert start == 100
        # A second grant queues behind the first.
        assert unit.grant_runahead(10, 5) == 120

    def test_registers_updated(self):
        unit = SparseUnit(make_program())
        unit.set_position(3, 10, 18)
        assert unit.registers.current_row == 3
        assert unit.registers.idxptr_start == 10
        assert unit.registers.idxptr_end == 18

    def test_utilisation_bounded(self):
        unit = SparseUnit(make_program())
        unit.occupy(0, 10)
        assert 0 <= unit.utilisation(100) <= 1


class TestControlCPU:
    def test_outer_branch_on_row_change(self):
        prog = make_program()
        cpu = ControlCPU(prog)
        events = cpu.events_for_tile(prog.tiles[0])
        pcs = [e.pc for e in events]
        assert PC_OUTER_LOOP in pcs
        assert PC_INNER_LOOP in pcs

    def test_no_outer_branch_within_row(self):
        prog = make_program()
        cpu = ControlCPU(prog)
        two_tile_rows = [
            (a, b)
            for a, b in zip(prog.tiles, prog.tiles[1:])
            if a.row == b.row
        ]
        if not two_tile_rows:
            pytest.skip("pattern produced no multi-tile rows")
        first, second = two_tile_rows[0]
        # Consume events in program order up to `second`.
        for tile in prog.tiles:
            events = cpu.events_for_tile(tile)
            if tile is second:
                assert all(e.pc != PC_OUTER_LOOP for e in events)
                break

    def test_inner_bound_is_row_end(self):
        prog = make_program()
        cpu = ControlCPU(prog)
        tile = prog.tiles[0]
        inner = [e for e in cpu.events_for_tile(tile) if e.pc == PC_INNER_LOOP][0]
        assert inner.bound == int(prog.rowptr[tile.row + 1])
