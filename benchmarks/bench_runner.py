"""Sweep runner — cold vs warm plan execution.

The runner's value proposition, measured: a cold Fig. 5 panel plan pays
full simulation cost; the warm rerun must be served entirely from the
on-disk cache (zero executor submissions) and return bit-identical
results.
"""

import dataclasses

from conftest import BENCH_SCALE, run_once

from repro.runner import ResultCache, SweepRunner, expand


def _plan():
    return expand(
        ["ds", "st"],
        ["inorder", "ooo", "stream", "imp", "dvr", "nvr"],
        scales=BENCH_SCALE,
        with_base=True,
    )


def test_bench_runner_cold(benchmark, tmp_path):
    runner = SweepRunner(cache=ResultCache(tmp_path))
    results = run_once(benchmark, runner.run_plan, _plan())
    assert runner.submitted == len(_plan())
    assert all(r.total_cycles > 0 for r in results)


def test_bench_runner_warm(benchmark, tmp_path):
    cold = SweepRunner(cache=ResultCache(tmp_path))
    cold_results = cold.run_plan(_plan())

    warm = SweepRunner(cache=ResultCache(tmp_path))
    warm_results = run_once(benchmark, warm.run_plan, _plan())
    assert warm.submitted == 0
    assert warm.cache_hits == len(_plan())
    assert [dataclasses.asdict(r) for r in warm_results] == [
        dataclasses.asdict(r) for r in cold_results
    ]
