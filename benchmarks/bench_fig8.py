"""Fig. 8 — system-level LLM evaluation (per-layer misses + throughput)."""

from conftest import BENCH_SCALE, run_once

from repro.analysis import fig8a_layer_miss, fig8bc_llm_throughput


def test_fig8a_layer_miss(benchmark):
    rates = run_once(benchmark, fig8a_layer_miss, scale=BENCH_SCALE)
    # Gather layers (QK^T, AV) miss heavily in-order; NVR collapses both
    # batch and element rates by an order of magnitude (log-scale figure).
    for layer in ("qkt", "av"):
        ino_batch, _ = rates[layer]["inorder"]
        nvr_batch, _ = rates[layer]["nvr"]
        assert ino_batch > 0.5
        assert nvr_batch < 0.15 * ino_batch
    # The streaming QKV layer was never the problem.
    assert rates["qkv"]["inorder"][0] < 0.3


def test_fig8bc_llm_throughput(benchmark):
    result = run_once(benchmark, fig8bc_llm_throughput, calib_scale=BENCH_SCALE)
    # Decode (IO-bound): NVR gains grow with context length (paper ~50%).
    assert result.decode_gain(512) > 0.05
    assert result.decode_gain(2048) > 0.3
    assert result.decode_gain(2048) > result.decode_gain(512)
    # Prefill (compute-bound): both plateau at the same peak; NVR reaches
    # it at lower bandwidth.
    prefill_base = result.prefill["inorder"][2048]
    prefill_nvr = result.prefill["nvr"][2048]
    assert prefill_nvr[-1] == prefill_base[-1]
    assert prefill_nvr[0] > prefill_base[0]
