"""Fig. 5 — normalised latency breakdown, one benchmark per panel.

Each panel runs all 8 workloads x 6 mechanisms with base/stall splits.
Shape assertions encode the paper's reading of the figure.
"""

import pytest
from conftest import BENCH_SCALE, run_once

from repro.analysis import fig5_latency_breakdown
from repro.utils import geometric_mean
from repro.workloads import WORKLOAD_ORDER


@pytest.mark.parametrize("panel", ["int8", "fp16", "int32", "int32+nsb"])
def test_fig5_panel(benchmark, panel):
    result = run_once(
        benchmark,
        fig5_latency_breakdown,
        workloads=WORKLOAD_ORDER,
        panels=(panel,),
        scale=BENCH_SCALE,
    )
    data = result.panels[panel]
    assert len(data) == 8
    for workload, per_mech in data.items():
        # Bars normalised to the in-order total.
        assert per_mech["inorder"].total == pytest.approx(1.0)
        # NVR is never slower than the no-prefetch baselines.
        assert per_mech["nvr"].total <= per_mech["inorder"].total + 1e-9
        assert per_mech["nvr"].total <= per_mech["ooo"].total + 0.05
    # Paper headline: NVR removes the overwhelming majority of stall time.
    assert result.stall_reduction(panel, "nvr") > 0.85
    # Paper headline: ~4x average speedup vs the no-prefetch NPU.
    speedups = [1.0 / max(per["nvr"].total, 1e-9) for per in data.values()]
    assert geometric_mean(speedups) > 2.0
