"""Fig. 9 — NSB and L2 cache sensitivity (perf = 1/(latency x area))."""

from conftest import BENCH_SCALE, run_once

from repro.analysis import fig9_nsb_sensitivity


def test_fig9_nsb_sensitivity(benchmark):
    result = run_once(
        benchmark,
        fig9_nsb_sensitivity,
        nsb_sizes=(4, 8, 16, 32),
        l2_sizes=(64, 128, 192, 256, 384, 512, 1024),
        scale=BENCH_SCALE,
    )
    assert len(result.perf) == 4
    assert len(result.perf[0]) == 7
    # Paper headline: a modest NSB out-delivers equal-area L2 scaling.
    assert result.nsb_vs_l2_benefit() > 2.0
    # Latency saturates with L2 size, so area-normalised perf decreases.
    for row in result.perf:
        assert row[0] > row[-1]
    # Raw latency is monotone non-increasing in L2 size (sanity).
    for row in result.cycles:
        assert row[0] >= row[-1] - row[-1] // 10
