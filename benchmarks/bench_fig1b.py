"""Fig. 1b — sparsity vs actual speedup gap (motivation figure)."""

from conftest import BENCH_SCALE, run_once

from repro.analysis import fig1b_sparsity_gap


def test_fig1b_sparsity_gap(benchmark):
    result = run_once(
        benchmark,
        fig1b_sparsity_gap,
        ratios=(1, 2, 4, 8, 16),
        scale=BENCH_SCALE,
    )
    # Speedup grows with the reduction ratio but stays at/below ideal.
    assert result.speedups == sorted(result.speedups)
    assert result.gap_at(16) >= 1.0
    # Off-chip traffic per step shrinks with parameter reduction.
    assert result.offchip_per_step[-1] < result.offchip_per_step[0]
