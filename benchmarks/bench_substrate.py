"""Substrate micro-benchmarks: the hot paths under every experiment.

These use pytest-benchmark's normal multi-round timing (they are
microseconds-to-milliseconds scale) and double as performance regression
guards for the simulator itself.
"""

import numpy as np

from repro.sim.memory.cache import Cache, CacheConfig
from repro.sim.memory.dram import DRAM, DRAMConfig
from repro.sim.npu.program import ProgramConfig, build_one_side_program
from repro.sparse.csr import CSRMatrix
from repro.sparse.generate import uniform_csr
from repro.sparse.spmm import spmm_one_side
from repro.workloads import build_workload


def test_cache_access_throughput(benchmark):
    cache = Cache(CacheConfig(size_bytes=256 * 1024, assoc=8))
    addrs = np.random.default_rng(0).integers(0, 1 << 22, size=4096)
    addrs = (addrs // 64 * 64).tolist()

    def run():
        for t, addr in enumerate(addrs):
            kind, line = cache.lookup(t, addr)
            if line is None:
                cache.allocate(t, addr, ready_at=t + 100, by_prefetch=False)

    benchmark(run)
    assert cache.resident_lines() > 0


def test_dram_channel_throughput(benchmark):
    def run():
        dram = DRAM(DRAMConfig())
        for t in range(2000):
            dram.access(t * 2, 64)
        return dram

    dram = benchmark(run)
    assert dram.transfers == 2000


def test_spmm_reference_kernel(benchmark):
    weights = uniform_csr(64, 512, 0.05, seed=1)
    activations = np.random.default_rng(2).random((512, 64)).astype(np.float32)
    out = benchmark(spmm_one_side, weights, activations)
    assert out.shape == (64, 64)


def test_program_lowering(benchmark):
    weights = uniform_csr(128, 2048, 0.03, seed=3)

    program = benchmark(build_one_side_program, "bench", weights, ProgramConfig())
    assert program.nnz == weights.nnz


def test_workload_build_ds(benchmark):
    program = benchmark(build_workload, "ds", 0.25)
    assert program.n_tiles > 0


def test_csr_from_dense(benchmark):
    rng = np.random.default_rng(4)
    dense = rng.random((128, 256)).astype(np.float32)
    dense[dense < 0.9] = 0.0
    csr = benchmark(CSRMatrix.from_dense, dense)
    assert csr.nnz == np.count_nonzero(dense)
