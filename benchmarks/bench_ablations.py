"""Design-choice ablations called out in DESIGN.md.

Not a paper figure — these benches probe the knobs behind NVR's results:
runahead depth, fuzzy boundaries, the approximate (SCD-extrapolation)
mode, MSHR capacity and NSB associativity.
"""

from conftest import BENCH_SCALE, run_once

from repro import run_workload
from repro.core import NVRConfig
from repro.core.nsb import nsb_config
from repro.sim.memory.hierarchy import MemoryConfig


def _depth_sweep():
    return {
        depth: run_workload(
            "ds",
            mechanism="nvr",
            scale=BENCH_SCALE,
            nvr_config=NVRConfig(depth_tiles=depth),
        )
        for depth in (1, 4, 8)
    }


def test_ablation_runahead_depth(benchmark):
    results = run_once(benchmark, _depth_sweep)
    # Depth-1 runahead cannot hide a full DRAM latency; deeper does.
    assert results[4].total_cycles < results[1].total_cycles
    assert results[4].stats.coverage() > results[1].stats.coverage()


def _fuzz_sweep():
    return {
        fuzz: run_workload(
            "gcn",
            mechanism="nvr",
            scale=BENCH_SCALE,
            nvr_config=NVRConfig(fuzz_vectors=fuzz),
        )
        for fuzz in (0, 2)
    }


def test_ablation_fuzzy_boundaries(benchmark):
    results = run_once(benchmark, _fuzz_sweep)
    # Fuzz trades a little accuracy for boundary coverage; neither
    # direction may collapse.
    for result in results.values():
        assert result.stats.prefetch.accuracy > 0.85
        assert result.stats.coverage() > 0.85


def _approx_sweep():
    return {
        approx: run_workload(
            "ds",
            mechanism="nvr",
            scale=BENCH_SCALE,
            nvr_config=NVRConfig(approximate=approx),
        )
        for approx in (False, True)
    }


def test_ablation_approximate_mode(benchmark):
    results = run_once(benchmark, _approx_sweep)
    # The confidence gate must keep approximate mode from hurting accuracy.
    assert results[True].stats.prefetch.accuracy > 0.9
    assert results[True].total_cycles <= results[False].total_cycles * 1.05


def _mshr_sweep():
    from repro.sim.memory.cache import CacheConfig

    out = {}
    for entries in (8, 64):
        memory = MemoryConfig(
            l2=CacheConfig(
                size_bytes=256 * 1024, assoc=8, mshr_entries=entries, name="l2"
            )
        )
        out[entries] = run_workload(
            "ds", mechanism="nvr", scale=BENCH_SCALE, memory=memory
        )
    return out


def test_ablation_mshr_capacity(benchmark):
    results = run_once(benchmark, _mshr_sweep)
    # The paper: VMIG's pipelining "depends on the MSHR". Starving the
    # MSHR file caps memory-level parallelism.
    assert results[64].total_cycles < results[8].total_cycles


def _nsb_assoc_sweep():
    out = {}
    for assoc in (2, 16):
        memory = MemoryConfig(nsb=nsb_config(size_kib=16, assoc=assoc))
        out[assoc] = run_workload(
            "gsabt", mechanism="nvr", scale=BENCH_SCALE, memory=memory
        )
    return out


def test_ablation_nsb_associativity(benchmark):
    results = run_once(benchmark, _nsb_assoc_sweep)
    # Sec. IV-G's argument for high-way mapping: block/global-token reuse
    # (GSABT) conflict-misses in low-associativity NSBs. (On cyclic-reuse
    # traces LRU thrashing can invert this - a classic replacement
    # pathology, not a conflict effect.)
    assert results[16].stats.nsb.demand_hits >= results[2].stats.nsb.demand_hits
    assert results[16].total_cycles <= results[2].total_cycles
