"""Fleet-layer overhead — herder ticks and cache push/pull throughput.

Neither path simulates anything, so both times are pure fleet-layer
cost. The herder tick is the half-second heartbeat of every
``fleet run``: a poll over the worker set plus a queue scan — if a
regression makes it scale with fleet size pathologically or hit the
filesystem per worker, a long sweep burns its budget on supervision.
Cache sync is the push/pull path fleets on separate filesystems use to
share warmth; its cost per (small) entry is the figure of merit.
"""

from conftest import run_once

from repro.errors import ConfigError
from repro.runner import (
    Fleet,
    ResultCache,
    RunSpec,
    WorkerHandle,
    pull_cache,
    push_cache,
)
from repro.runner.fleet import RUNNING

FLEET_SIZE = 64
SYNC_ENTRIES = 200


class StaticDriver:
    """A driver whose workers never die — isolates pure tick overhead."""

    name = "static"

    def __init__(self):
        self._seq = 0

    def config(self) -> dict:
        return {}

    def submit(self, count):
        handles = []
        for _ in range(count):
            self._seq += 1
            handles.append(WorkerHandle(f"static-{self._seq}", {}))
        return handles

    def poll(self, handles):
        return {handle.id: RUNNING for handle in handles}

    def stop(self, handles):
        pass


def test_bench_herder_tick(benchmark, tmp_path):
    fleet = Fleet(tmp_path, StaticDriver(), min_workers=1, max_workers=FLEET_SIZE)
    fleet.up(FLEET_SIZE)

    def ticks() -> int:
        for _ in range(10):
            status = fleet.tick()
        return status.running

    # The queue is empty, so the autoscaler pulls the fleet to its
    # floor on the first tick; the steady state being timed is
    # poll + deep-less queue scan + state save.
    assert run_once(benchmark, ticks) == 1
    fleet.down(drain_timeout=0.0)


def test_bench_cache_push_pull(benchmark, tmp_path):
    source = ResultCache(tmp_path / "source")
    for seed in range(SYNC_ENTRIES):
        spec = RunSpec("st", scale=0.05, seed=seed)
        source.put(spec, {"total_cycles": seed + 1, "stall_cycles": 0})

    def sync() -> tuple[int, int]:
        pushed = push_cache(source, str(tmp_path / "remote"))
        pulled = pull_cache(
            ResultCache(tmp_path / "dest"), str(tmp_path / "remote")
        )
        return pushed.copied, pulled.copied

    # One cold round trip: every entry copied out, then verified in.
    copied_out, copied_in = run_once(benchmark, sync)
    assert copied_out == SYNC_ENTRIES
    assert copied_in == SYNC_ENTRIES


def test_fleet_benchmark_drivers_do_not_hit_the_network(tmp_path):
    # A guard, not a timing: the benchmarked paths must never shell out
    # (ssh/sbatch), or CI timing would measure the network instead.
    fleet = Fleet(tmp_path, StaticDriver())
    try:
        fleet.arm_chaos()
    except ConfigError as exc:
        assert "kill hook" in str(exc)
    else:  # pragma: no cover
        raise AssertionError("StaticDriver must not expose a kill hook")
