"""Fig. 6 — prefetcher accuracy (a), coverage (b) and data movement (c)."""

from conftest import BENCH_SCALE, run_once

from repro.analysis import fig6_accuracy_coverage, fig6c_data_movement
from repro.workloads import WORKLOAD_ORDER


def test_fig6ab_accuracy_coverage(benchmark):
    result = run_once(
        benchmark,
        fig6_accuracy_coverage,
        workloads=WORKLOAD_ORDER,
        scale=BENCH_SCALE,
    )
    # Paper: NVR keeps both metrics above ~90% across most workloads.
    assert result.mean_accuracy("nvr") > 0.9
    assert result.mean_coverage("nvr") > 0.75
    # Coverage ordering on irregular workloads: nvr > dvr > imp > stream.
    for workload in ("ds", "gcn", "h2o"):
        per = result.data[workload]
        assert per["nvr"][1] > per["dvr"][1] > per["imp"][1] > per["stream"][1]
    # The hash capability gap (MK/SCN).
    for workload in ("mk", "scn"):
        per = result.data[workload]
        assert per["nvr"][1] > 0.9
        assert per["imp"][1] < 0.2
        assert per["dvr"][1] < 0.2


def test_fig6c_data_movement(benchmark):
    result = run_once(benchmark, fig6c_data_movement, scale=BENCH_SCALE)
    # Paper: ~30x fewer off-chip accesses during actual load execution.
    assert result.reduction("nvr") > 10
    assert result.reduction("nvr+nsb") > 10
