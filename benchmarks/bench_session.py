"""Session API overhead — warm Grid sweep (plan build + cache hits).

The front-door contract: a warm ``session.sweep(grid)`` pays only Grid
expansion, spec canonicalisation/keying, cache lookups and ResultSet
assembly — zero simulation. This benchmark times exactly that path, so
API-layer regressions (an accidentally quadratic expansion, a spec
re-serialisation per lookup, a cache scan per point) show up in the
``benchmarks-regression`` CI gate even though each is milliseconds.
"""

from conftest import run_once

from repro import Grid, Session
from repro.api import MECHANISM_ORDER

GRID_SCALE = 0.1


def _grid() -> Grid:
    return Grid(
        workload=("ds", "st"),
        mechanism=MECHANISM_ORDER,
        scale=GRID_SCALE,
        with_base=True,
    )


def test_bench_session_warm_grid(benchmark, tmp_path):
    with Session(cache_dir=tmp_path) as cold:
        cold.sweep(_grid())
        assert cold.submitted == len(_grid())

    with Session(cache_dir=tmp_path) as warm:
        rs = run_once(benchmark, lambda: warm.sweep(_grid()))
        assert warm.submitted == 0
        assert warm.cache_hits == len(_grid())
        assert len(rs) == len(_grid())
        assert all(r.total_cycles > 0 for r in rs.results)
