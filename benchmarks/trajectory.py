"""The committed performance trajectory: measure, append, gate.

``BENCH_trajectory.json`` records one end-to-end wall time per landed
PR that touched simulator performance: the **cold scale-0.1 paper
figures plan** (every figure's sweep, 279 points) executed serially
against a fresh result cache. One number, one workload mix, measured
the same way every time — so the file reads as the repo's speed history
and a regression shows up as the first non-monotone step.

Timing discipline: the plan is run ``--repeat`` times, each against its
own fresh temporary cache directory, and the **minimum** is recorded.
On shared machines (CI runners, build VMs) the minimum estimates the
noise-free cost; means and medians drift with scheduler interference.
Single runs on such machines vary by tens of percent — never trust one.

Usage::

    python benchmarks/trajectory.py measure             # print one record
    python benchmarks/trajectory.py append --label pr7-foo
    python benchmarks/trajectory.py check               # gate vs last entry

``measure`` prints the measurement as JSON without touching the file.
``append`` measures and appends an entry (commit the file with the PR
that changed performance). ``check`` is the CI gate: measure, compare
against the file's last committed entry, and fail only on a *gross*
regression (default 2x and +5s — generous because CI machines are not
the machines the entries were recorded on).

``--engine`` reruns the plan's sim points on a non-default simulation
kernel (``vectorized``/``batched``) and stamps the entry with it;
``check`` follows the last committed entry's engine automatically so
the gate always compares like with like. Records resting on a single
cold run draw a warning — min-of-1 is not a minimum.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

TRAJECTORY_PATH = Path(__file__).parent / "BENCH_trajectory.json"
DEFAULT_SCALE = 0.1
DEFAULT_REPEAT = 2


def run_figures_plan_once(scale: float, engine: str | None = None) -> tuple[float, int]:
    """One cold serial run of the figures plan; (wall seconds, points)."""
    from repro.analysis.paperfigs import figures_plan
    from repro.session import Session

    plan = figures_plan(scale=scale)
    with tempfile.TemporaryDirectory(prefix="repro-trajectory-") as cache_dir:
        with Session(
            jobs=1, cache_dir=cache_dir, progress=False, engine=engine
        ) as session:
            start = time.perf_counter()
            session.sweep(plan)
            wall = time.perf_counter() - start
    return wall, len(plan.specs)


def measure(
    scale: float = DEFAULT_SCALE,
    repeat: int = DEFAULT_REPEAT,
    engine: str | None = None,
) -> dict:
    """Min-of-``repeat`` cold figures-plan wall time as a record dict."""
    runs = []
    points = 0
    for _ in range(max(1, repeat)):
        wall, points = run_figures_plan_once(scale, engine=engine)
        runs.append(round(wall, 3))
    record = {
        "figures_wall_s": min(runs),
        "runs": runs,
        "points": points,
        "scale": scale,
    }
    if engine is not None:
        record["engine"] = engine
    return record


def warn_single_run(record: dict, origin: str) -> None:
    """Nag when a record rests on one cold run — min-of-1 is not a min."""
    if len(record.get("runs", ())) == 1:
        print(
            f"::warning::{origin} has a single cold run; one run on a "
            "shared machine varies by tens of percent — re-measure with "
            "--repeat >= 2 before trusting or committing it"
        )


def load_trajectory() -> dict:
    with open(TRAJECTORY_PATH, encoding="utf-8") as handle:
        return json.load(handle)


def save_trajectory(document: dict) -> None:
    TRAJECTORY_PATH.write_text(
        json.dumps(document, indent=2) + "\n", encoding="utf-8"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "command", choices=("measure", "append", "check"), help="see module docstring"
    )
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    parser.add_argument(
        "--repeat",
        type=int,
        default=DEFAULT_REPEAT,
        help=f"cold runs; the minimum is recorded (default {DEFAULT_REPEAT})",
    )
    parser.add_argument(
        "--label",
        default=None,
        help="entry label for 'append' (e.g. pr7-batched-dram)",
    )
    parser.add_argument(
        "--engine",
        default=None,
        help="run the plan's sim points on this simulation kernel "
        "('vectorized'/'batched'; default: the plan as committed — "
        "'check' follows the last entry's engine so the gate compares "
        "like with like)",
    )
    parser.add_argument(
        "--note", default="", help="one-line what-changed note for 'append'"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=2.0,
        help="'check' fails when wall > last * threshold (default 2.0)",
    )
    parser.add_argument(
        "--slack",
        type=float,
        default=5.0,
        help="and wall > last + slack seconds (default 5.0; CI machines "
        "are slower and noisier than the recording machines)",
    )
    args = parser.parse_args(argv)

    engine = args.engine
    last = load_trajectory()["entries"][-1]
    if args.command == "check" and engine is None:
        # Gate like with like: a trajectory whose last entry was
        # recorded on a faster kernel must be re-run on that kernel.
        engine = last.get("engine")

    record = measure(scale=args.scale, repeat=args.repeat, engine=engine)
    print(json.dumps(record, indent=1))
    warn_single_run(record, "this measurement")

    if args.command == "measure":
        return 0

    if args.command == "append":
        if not args.label:
            parser.error("append needs --label")
        document = load_trajectory()
        entry = {"label": args.label, **record}
        if args.note:
            entry["note"] = args.note
        document["entries"].append(entry)
        save_trajectory(document)
        print(f"appended '{args.label}' to {TRAJECTORY_PATH}")
        return 0

    # check: gate against the last committed entry, generously.
    warn_single_run(last, f"last committed entry '{last['label']}'")
    bound = max(
        last["figures_wall_s"] * args.threshold,
        last["figures_wall_s"] + args.slack,
    )
    wall = record["figures_wall_s"]
    print(
        f"figures plan: {wall:.2f}s vs last committed "
        f"'{last['label']}' {last['figures_wall_s']:.2f}s "
        f"(bound {bound:.2f}s)"
    )
    if wall > bound:
        print(
            "::error::gross figures-plan slowdown vs the committed "
            "trajectory; if intentional, append a new entry with "
            "`python benchmarks/trajectory.py append --label ...` and "
            "explain in the PR"
        )
        return 1
    print("within bound")
    return 0


if __name__ == "__main__":
    sys.exit(main())
