"""Fig. 7 — normalised bandwidth allocation with and without the NSB."""

from conftest import BENCH_SCALE, run_once

from repro.analysis import fig7_bandwidth_allocation


def test_fig7_bandwidth_allocation(benchmark):
    result = run_once(benchmark, fig7_bandwidth_allocation, scale=BENCH_SCALE)
    # Paper: off-chip bandwidth reduced by ~75% vs the explicit-preload
    # baseline in both configurations.
    assert result.offchip_reduction(False) > 0.6
    assert result.offchip_reduction(True) > 0.6
    # Prefetch traffic replaces demand traffic (the allocation shift).
    assert result.without_nsb["nvr_prefetch"] > result.without_nsb["npu_demand"]
    # With the NSB, part of the NPU's read traffic is served in-NPU.
    assert result.with_nsb["nsb_to_npu"] > 0
