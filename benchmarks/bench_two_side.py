"""Two-sides sparsity (Fig. 2, second listing) — mechanism comparison.

Not a separate paper figure (Fig. 2 defines the pattern; the evaluation
uses one-side workloads), but the pattern class completes the paper's
taxonomy: data-dependent segment bases *and* lengths through IA's
rowptr — the deepest chain in the design space.
"""

from conftest import run_once

from repro.core import NVRPrefetcher
from repro.prefetch import (
    DecoupledVectorRunahead,
    IndirectMemoryPrefetcher,
    NullPrefetcher,
)
from repro.sim.npu.program import ProgramConfig
from repro.sim.npu.two_side import build_two_side_program
from repro.sim.soc import System
from repro.sparse.generate import uniform_csr


def _run_two_side():
    weights = uniform_csr(120, 1024, 0.03, seed=1)
    activations = uniform_csr(1024, 2048, 0.02, seed=2)
    program = build_two_side_program(
        "2s", weights, activations, ProgramConfig(elem_bytes=2)
    )
    return {
        name: System(program=program, prefetcher_factory=factory).run()
        for name, factory in (
            ("inorder", NullPrefetcher),
            ("imp", IndirectMemoryPrefetcher),
            ("dvr", DecoupledVectorRunahead),
            ("nvr", NVRPrefetcher),
        )
    }


def test_two_side_mechanisms(benchmark):
    results = run_once(benchmark, _run_two_side)
    # Affine mechanisms cover only the streaming side of the chain.
    assert results["imp"].stats.coverage() < 0.5
    assert results["dvr"].stats.coverage() < 0.5
    # NVR walks base and length through the sparse unit.
    assert results["nvr"].stats.coverage() > 0.75
    assert (
        results["nvr"].total_cycles
        < min(results["imp"].total_cycles, results["dvr"].total_cycles)
    )
