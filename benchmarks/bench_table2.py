"""Table II — workload suite construction and trace statistics."""

from conftest import BENCH_SCALE, run_once

from repro.analysis import table2_workloads


def test_table2_workloads(benchmark):
    rows = run_once(benchmark, table2_workloads, scale=BENCH_SCALE)
    assert [r.short for r in rows] == [
        "DS",
        "GAT",
        "GCN",
        "GSABT",
        "H2O",
        "MK",
        "SCN",
        "ST",
    ]
    domains = {r.short: r.domain for r in rows}
    assert domains["DS"] == "large language model"
    assert domains["ST"] == "mixture of experts"
    assert domains["MK"] == "point cloud"
    # Every workload's gather space exceeds the 256 KiB L2.
    for row in rows:
        assert row.footprint_kib > 256
    # ST is the reuse outlier the paper calls out.
    st = [r for r in rows if r.short == "ST"][0]
    others = [r.reuse_factor for r in rows if r.short not in ("ST", "GSABT")]
    assert st.reuse_factor > max(others)
