"""Shared benchmark configuration.

Every benchmark regenerates one paper table/figure at a reduced scale and
asserts its qualitative shape; pytest-benchmark reports the harness run
time. Heavy harnesses run a single round (they are minutes-scale at full
evaluation size; the reduced scale keeps each under ~1 minute).
"""

BENCH_SCALE = 0.25


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with exactly one timed invocation, returning its
    result for shape assertions."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
