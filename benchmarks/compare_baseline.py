"""Gate pytest-benchmark results against a committed baseline.

The ``benchmarks-regression`` CI job runs the runner + one figure
benchmark, then compares the medians against ``benchmarks/baseline.json``
with a deliberately generous threshold: the goal is catching *gross*
regressions (an accidentally quadratic cache scan, a sweep that stopped
deduplicating), not micro-variance between runner machines.

A benchmark only fails the gate when its median exceeds **both**
``baseline * threshold`` and ``baseline + slack`` — the absolute slack
keeps millisecond-scale benchmarks (the warm cache run) from flaking on
scheduler noise while still catching order-of-magnitude blowups.

Usage::

    python benchmarks/compare_baseline.py benchmark.json
    python benchmarks/compare_baseline.py benchmark.json --threshold 2.0
    python benchmarks/compare_baseline.py benchmark.json --update

``--update`` rewrites the baseline from the given results; commit the
file when benchmark timings change intentionally (new hardware target,
benchmark-scale change, real optimisation) and say so in the PR.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).parent / "baseline.json"


def load_medians(results_path: Path) -> dict[str, float]:
    """fullname -> median seconds from a pytest-benchmark JSON file."""
    with open(results_path, encoding="utf-8") as handle:
        data = json.load(handle)
    return {bench["fullname"]: bench["stats"]["median"] for bench in data["benchmarks"]}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("results", help="pytest-benchmark JSON output")
    parser.add_argument(
        "--baseline",
        default=str(DEFAULT_BASELINE),
        help=f"committed baseline file (default {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=2.0,
        help="fail when median > baseline * threshold (default 2.0)",
    )
    parser.add_argument(
        "--slack",
        type=float,
        default=0.5,
        help="and median > baseline + slack seconds (default 0.5; "
        "absorbs noise on millisecond-scale benchmarks)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from these results instead of comparing",
    )
    args = parser.parse_args(argv)

    medians = load_medians(Path(args.results))
    baseline_path = Path(args.baseline)
    if args.update:
        document = {
            "_comment": (
                "Median seconds per benchmark, gated by "
                "compare_baseline.py; regenerate with --update on "
                "intentional timing changes."
            ),
            "benchmarks": {
                name: round(median, 4) for name, median in sorted(medians.items())
            },
        }
        baseline_path.write_text(
            json.dumps(document, indent=2) + "\n", encoding="utf-8"
        )
        print(f"wrote {baseline_path} ({len(medians)} benchmarks)")
        return 0

    with open(baseline_path, encoding="utf-8") as handle:
        baseline = json.load(handle)["benchmarks"]

    failures = []
    for name, median in sorted(medians.items()):
        base = baseline.get(name)
        if base is None:
            print(f"NEW      {name}: {median:.3f}s (no baseline; add with " "--update)")
            continue
        bound = max(base * args.threshold, base + args.slack)
        status = "FAIL" if median > bound else "ok"
        print(
            f"{status:<8} {name}: {median:.3f}s "
            f"(baseline {base:.3f}s, bound {bound:.3f}s)"
        )
        if median > bound:
            failures.append(name)
    missing = sorted(set(baseline) - set(medians))
    for name in missing:
        print(f"MISSING  {name}: in baseline but not in results")

    if failures:
        print(
            f"\n{len(failures)} gross regression(s) over "
            f"{args.threshold}x+{args.slack}s bound; if intentional, "
            "regenerate the baseline with --update and explain in the PR."
        )
        return 1
    print("\nall benchmarks within bound")
    return 0


if __name__ == "__main__":
    sys.exit(main())
