"""Table I — NVR hardware overhead accounting."""

from conftest import run_once

from repro.analysis import table1_overhead


def test_table1_overhead(benchmark):
    report = run_once(benchmark, table1_overhead)
    rows = report.rows()
    names = [r[0] for r in rows]
    assert names == ["SD", "SCD", "LBD", "VMIG", "Snooper"]
    # Structures whose printed arithmetic is self-consistent must match
    # the paper exactly.
    quoted = {name: (computed, paper) for name, _, computed, paper, _ in []}
    for name, _, computed, paper, match in rows:
        if name in ("SD", "LBD", "VMIG", "Snooper"):
            assert match, f"{name}: computed {computed} != paper {paper}"
    # Detector storage is tiny; area ratio under the paper's 5% envelope.
    assert report.total_kib < 2.0
    assert report.area_fraction(with_nsb=False) < 0.05
    assert report.area_fraction(with_nsb=True) < 0.10
